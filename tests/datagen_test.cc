#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "datagen/corruption.h"
#include "datagen/generators.h"

namespace progres {
namespace {

// ---------------------------------------------------------------- corrupt

TEST(CorruptionTest, ZeroRatesPreserveValue) {
  Rng rng(1);
  const CorruptionConfig config{.typo_rate = 0.0, .missing_rate = 0.0,
                                .truncate_rate = 0.0};
  EXPECT_EQ(CorruptValue("hello world", config, &rng), "hello world");
}

TEST(CorruptionTest, MissingRateOneEmptiesValue) {
  Rng rng(2);
  const CorruptionConfig config{.typo_rate = 0.0, .missing_rate = 1.0,
                                .truncate_rate = 0.0};
  EXPECT_EQ(CorruptValue("hello", config, &rng), "");
}

TEST(CorruptionTest, TypoRateChangesRoughlyProportionally) {
  Rng rng(3);
  const CorruptionConfig config{.typo_rate = 0.1, .missing_rate = 0.0,
                                .truncate_rate = 0.0};
  const std::string base(1000, 'a');
  int changed_runs = 0;
  for (int i = 0; i < 20; ++i) {
    if (CorruptValue(base, config, &rng) != base) ++changed_runs;
  }
  EXPECT_EQ(changed_runs, 20);  // at 10% per char on 1000 chars, certain
}

TEST(CorruptionTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  const CorruptionConfig config{.typo_rate = 0.2, .missing_rate = 0.1,
                                .truncate_rate = 0.1};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(CorruptValue("progressive entity resolution", config, &a),
              CorruptValue("progressive entity resolution", config, &b));
  }
}

// ---------------------------------------------------------------- pubs

TEST(PublicationGeneratorTest, ProducesRequestedSize) {
  PublicationConfig config;
  config.num_entities = 1234;
  const LabeledDataset data = GeneratePublications(config);
  EXPECT_EQ(data.dataset.size(), 1234);
  EXPECT_EQ(data.truth.num_entities(), 1234);
  EXPECT_EQ(data.dataset.schema().size(), 3u);
}

TEST(PublicationGeneratorTest, InjectsDuplicates) {
  PublicationConfig config;
  config.num_entities = 5000;
  const LabeledDataset data = GeneratePublications(config);
  EXPECT_GT(data.truth.num_duplicate_pairs(), 200);
  // But not everything is a duplicate.
  EXPECT_LT(data.truth.num_duplicate_pairs(), data.dataset.size());
}

TEST(PublicationGeneratorTest, DeterministicForSeed) {
  PublicationConfig config;
  config.num_entities = 500;
  config.seed = 17;
  const LabeledDataset a = GeneratePublications(config);
  const LabeledDataset b = GeneratePublications(config);
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (EntityId i = 0; i < a.dataset.size(); ++i) {
    EXPECT_EQ(a.dataset.entity(i).attributes, b.dataset.entity(i).attributes);
    EXPECT_EQ(a.truth.cluster_of(i), b.truth.cluster_of(i));
  }
}

TEST(PublicationGeneratorTest, DifferentSeedsDiffer) {
  PublicationConfig a_config;
  a_config.num_entities = 200;
  a_config.seed = 1;
  PublicationConfig b_config = a_config;
  b_config.seed = 2;
  const LabeledDataset a = GeneratePublications(a_config);
  const LabeledDataset b = GeneratePublications(b_config);
  int differing = 0;
  for (EntityId i = 0; i < 200; ++i) {
    if (a.dataset.entity(i).attributes != b.dataset.entity(i).attributes) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 150);
}

TEST(PublicationGeneratorTest, TitlePrefixBlocksAreSkewed) {
  PublicationConfig config;
  config.num_entities = 8000;
  const LabeledDataset data = GeneratePublications(config);
  std::unordered_map<std::string, int64_t> block_sizes;
  for (const Entity& e : data.dataset.entities()) {
    ++block_sizes[std::string(e.attribute(kPubTitle).substr(0, 2))];
  }
  int64_t max_size = 0;
  for (const auto& [key, size] : block_sizes) {
    (void)key;
    max_size = std::max(max_size, size);
  }
  // Zipf first words: the biggest prefix-2 block dwarfs the average.
  const double average = static_cast<double>(data.dataset.size()) /
                         static_cast<double>(block_sizes.size());
  EXPECT_GT(static_cast<double>(max_size), 5.0 * average);
}

TEST(PublicationGeneratorTest, ClusterSizesAreSkewed) {
  PublicationConfig config;
  config.num_entities = 10000;
  const LabeledDataset data = GeneratePublications(config);
  std::unordered_map<int32_t, int> sizes;
  for (EntityId i = 0; i < data.dataset.size(); ++i) {
    ++sizes[data.truth.cluster_of(i)];
  }
  int singletons = 0;
  int large = 0;
  for (const auto& [cluster, n] : sizes) {
    (void)cluster;
    if (n == 1) ++singletons;
    if (n >= 4) ++large;
  }
  EXPECT_GT(singletons, 0);
  EXPECT_GT(large, 0);
}

// ---------------------------------------------------------------- books

TEST(BookGeneratorTest, EightAttributes) {
  BookConfig config;
  config.num_entities = 800;
  const LabeledDataset data = GenerateBooks(config);
  EXPECT_EQ(data.dataset.schema().size(), 8u);
  EXPECT_EQ(data.dataset.size(), 800);
  EXPECT_GT(data.truth.num_duplicate_pairs(), 10);
}

TEST(BookGeneratorTest, YearAndPagesAreNumeric) {
  BookConfig config;
  config.num_entities = 300;
  const LabeledDataset data = GenerateBooks(config);
  for (const Entity& e : data.dataset.entities()) {
    const std::string_view year = e.attribute(kBookYear);
    ASSERT_FALSE(year.empty());
    for (char c : year) EXPECT_TRUE(c >= '0' && c <= '9');
  }
}

TEST(BookGeneratorTest, Deterministic) {
  BookConfig config;
  config.num_entities = 300;
  const LabeledDataset a = GenerateBooks(config);
  const LabeledDataset b = GenerateBooks(config);
  for (EntityId i = 0; i < 300; ++i) {
    EXPECT_EQ(a.dataset.entity(i).attributes, b.dataset.entity(i).attributes);
  }
}

// ---------------------------------------------------------------- stream

// Joins an entity's attributes and cluster id into one comparison key.
std::string EntityFingerprint(const std::vector<std::string>& attributes,
                              int32_t cluster) {
  std::string key;
  for (const std::string& attribute : attributes) {
    key += attribute;
    key.push_back('\t');
  }
  key += std::to_string(cluster);
  return key;
}

// The streaming entry points share the batch generators' RNG draw sequence,
// so a stream must deliver exactly the batch dataset's entities — as a
// multiset, since the batch path shuffles and the stream does not.
TEST(StreamGeneratorTest, PublicationsMatchBatchAsMultiset) {
  PublicationConfig config;
  config.num_entities = 500;
  config.seed = 99;

  std::multiset<std::string> streamed;
  int64_t count = 0;
  StreamPublications(config, [&](std::vector<std::string> attributes,
                                 int32_t cluster) {
    ASSERT_EQ(attributes.size(), PublicationSchema().size());
    streamed.insert(EntityFingerprint(attributes, cluster));
    ++count;
  });
  EXPECT_EQ(count, config.num_entities);

  const LabeledDataset batch = GeneratePublications(config);
  std::multiset<std::string> materialized;
  for (EntityId i = 0; i < batch.dataset.size(); ++i) {
    materialized.insert(EntityFingerprint(batch.dataset.entity(i).attributes,
                                          batch.truth.cluster_of(i)));
  }
  EXPECT_EQ(streamed, materialized);
}

// The mega-block knob must keep the batch/stream draw-sequence contract:
// both entry points see the same entities, and the head-heavy skew is
// visible as a dominant shared title prefix.
TEST(StreamGeneratorTest, MegaBlockPublicationsMatchBatchAsMultiset) {
  PublicationConfig config;
  config.num_entities = 500;
  config.seed = 99;
  config.mega_block_fraction = 0.3;

  std::multiset<std::string> streamed;
  std::map<std::string, int64_t> prefix_counts;
  StreamPublications(config, [&](std::vector<std::string> attributes,
                                 int32_t cluster) {
    ++prefix_counts[attributes[kPubTitle].substr(0, 2)];
    streamed.insert(EntityFingerprint(attributes, cluster));
  });

  const LabeledDataset batch = GeneratePublications(config);
  std::multiset<std::string> materialized;
  for (EntityId i = 0; i < batch.dataset.size(); ++i) {
    materialized.insert(EntityFingerprint(batch.dataset.entity(i).attributes,
                                          batch.truth.cluster_of(i)));
  }
  EXPECT_EQ(streamed, materialized);

  int64_t max_prefix = 0;
  for (const auto& [prefix, count] : prefix_counts) {
    max_prefix = std::max(max_prefix, count);
  }
  EXPECT_GE(max_prefix, config.num_entities / 5)
      << "mega-block profile did not concentrate one title-prefix block";
}

TEST(StreamGeneratorTest, BooksMatchBatchAsMultiset) {
  BookConfig config;
  config.num_entities = 400;
  config.seed = 7;

  std::multiset<std::string> streamed;
  StreamBooks(config, [&](std::vector<std::string> attributes,
                          int32_t cluster) {
    ASSERT_EQ(attributes.size(), BookSchema().size());
    streamed.insert(EntityFingerprint(attributes, cluster));
  });

  const LabeledDataset batch = GenerateBooks(config);
  std::multiset<std::string> materialized;
  for (EntityId i = 0; i < batch.dataset.size(); ++i) {
    materialized.insert(EntityFingerprint(batch.dataset.entity(i).attributes,
                                          batch.truth.cluster_of(i)));
  }
  EXPECT_EQ(streamed, materialized);
}

TEST(StreamGeneratorTest, ClusterMembersArriveAdjacent) {
  PublicationConfig config;
  config.num_entities = 300;
  std::vector<int32_t> order;
  StreamPublications(config, [&](std::vector<std::string> /*attributes*/,
                                 int32_t cluster) {
    order.push_back(cluster);
  });
  ASSERT_EQ(order.size(), 300u);
  // Generation order: cluster ids are non-decreasing and dense.
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(order[i], order[i - 1]);
    EXPECT_LE(order[i], order[i - 1] + 1);
  }
}

// ---------------------------------------------------------------- toy

TEST(PeopleToyTest, MatchesTableI) {
  const LabeledDataset toy = GeneratePeopleToy();
  ASSERT_EQ(toy.dataset.size(), 9);
  EXPECT_EQ(toy.dataset.entity(0).attribute(0), "John Lopez");
  EXPECT_EQ(toy.dataset.entity(4).attribute(0), "Gharles Andrews");
  EXPECT_EQ(toy.dataset.entity(8).attribute(1), "LA");
  // Clusters {e1,e2,e3}, {e4,e5}, singletons: 3 + 1 = 4 duplicate pairs.
  EXPECT_EQ(toy.truth.num_duplicate_pairs(), 4);
  EXPECT_TRUE(toy.truth.IsDuplicate(0, 2));
  EXPECT_TRUE(toy.truth.IsDuplicate(3, 4));
  EXPECT_FALSE(toy.truth.IsDuplicate(5, 6));
}

}  // namespace
}  // namespace progres

#ifndef PROGRES_TESTS_ER_GOLDEN_UTIL_H_
#define PROGRES_TESTS_ER_GOLDEN_UTIL_H_

// Golden-equivalence harness for the ER drivers. Each driver runs on a
// fixed workload and cluster; its entire observable output — pairs,
// counters (minus the runtime's own "mr.shuffle." accounting, which the
// layered runtime added after the fixtures were frozen), recall curve,
// chunks and timings — is serialized to a canonical text form. The
// `make_er_golden` tool wrote the fixtures under tests/golden/ at the
// pre-refactor seed state; `driver_matrix_test` re-runs the drivers and
// diffs against them byte for byte.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "blocking/forest.h"
#include "core/basic_er.h"
#include "core/er_result.h"
#include "core/mrsn_er.h"
#include "core/progressive_er.h"
#include "core/stats_job.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mapreduce/trace.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace testing_util {

// The golden fixtures were frozen without the storage fault domain. The
// PROGRES_DISK_FAULTS environment overlay injects disk faults into every
// spilling job, which adds "mr.disk." counters and (via barrier re-runs)
// shifts the simulated timeline — so fixture comparisons are skipped under
// it, while the run-vs-run equivalence checks (tracing differential,
// threaded-vs-simulated) still execute and must hold.
inline bool DiskFaultOverlayActive() {
  return std::getenv("PROGRES_DISK_FAULTS") != nullptr;
}

// The frozen workload: publications with a 500-entity training sample.
struct GoldenWorkload {
  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.75};
};

inline GoldenWorkload MakeGoldenWorkload() {
  GoldenWorkload w;
  PublicationConfig train_gen;
  train_gen.num_entities = 500;
  train_gen.seed = 411;
  w.train = GeneratePublications(train_gen);
  PublicationConfig gen;
  gen.num_entities = 1500;
  gen.seed = 412;
  w.data = GeneratePublications(gen);
  w.blocking = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                               {"Y", kPubAbstract, {3, 5}, -1},
                               {"Z", kPubVenue, {3, 5}, -1}});
  w.match = MatchFunction(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
  return w;
}

inline ClusterConfig GoldenCluster() {
  ClusterConfig cluster;
  cluster.machines = 3;
  cluster.execution_threads = 4;
  return cluster;
}

// Shortest round-trippable decimal form of `v`.
inline std::string FormatExact(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

// Canonical text form of everything a driver reports. Counters under the
// reserved "mr.shuffle." and "mr.spill." prefixes are skipped: they did not
// exist when the fixtures were frozen and are runtime bookkeeping, not
// driver output — which also keeps the dump byte-identical with spilling
// forced on (PROGRES_FORCE_SPILL) or off, the out-of-core invariant the
// matrix tests pin down.
inline std::string DumpErRunResult(const ErRunResult& r,
                                   const GroundTruth& truth) {
  std::string out;
  out += "failed=" + std::to_string(r.failed ? 1 : 0) + "\n";
  out += "preprocessing_end=" + FormatExact(r.preprocessing_end) + "\n";
  out += "total_time=" + FormatExact(r.total_time) + "\n";
  out += "comparisons=" + std::to_string(r.comparisons) + "\n";
  out += "duplicate_count=" + std::to_string(r.duplicate_count) + "\n";
  out += "distinct_count=" + std::to_string(r.distinct_count) + "\n";
  out += "skipped_count=" + std::to_string(r.skipped_count) + "\n";
  for (const auto& [name, value] : r.counters.values()) {
    if (name.rfind("mr.shuffle.", 0) == 0) continue;
    if (name.rfind("mr.spill.", 0) == 0) continue;
    out += "counter " + name + "=" + std::to_string(value) + "\n";
  }
  out += "events=" + std::to_string(r.events.size()) + "\n";
  for (const DuplicateEvent& event : r.events) {
    const auto [a, b] = PairKeyIds(event.pair);
    out += "event " + FormatExact(event.time) + " " + std::to_string(a) +
           "-" + std::to_string(b) + "\n";
  }
  for (PairKey pair : r.duplicates) {
    const auto [a, b] = PairKeyIds(pair);
    out += "pair " + std::to_string(a) + "-" + std::to_string(b) + "\n";
  }
  for (const ResultChunk& chunk : r.chunks) {
    out += "chunk " + std::to_string(chunk.task) + " " +
           FormatExact(chunk.cost_begin) + " " + FormatExact(chunk.cost_end) +
           " " + FormatExact(chunk.flush_time) + " " +
           std::to_string(chunk.pairs.size()) + "\n";
  }
  const RecallCurve curve = RecallCurve::FromEvents(r.events, truth);
  out += "final_recall=" + FormatExact(curve.final_recall()) + "\n";
  for (const RecallCurve::Point& point : curve.points()) {
    out += "recall " + FormatExact(point.time) + " " +
           FormatExact(point.recall) + "\n";
  }
  return out;
}

// Canonical text form of the statistics job's forests.
inline std::string DumpForests(const std::vector<Forest>& forests) {
  std::string out;
  for (const Forest& forest : forests) {
    out += "forest family=" + std::to_string(forest.family) +
           " nodes=" + std::to_string(forest.nodes.size()) +
           " roots=" + std::to_string(forest.roots.size()) + "\n";
    for (const BlockNode& node : forest.nodes) {
      out += "block " + std::to_string(node.id.level) + " " + node.id.path +
             " size=" + std::to_string(node.size) +
             " uncov=" + std::to_string(node.uncov) + " parent=" +
             (node.parent >= 0
                  ? forest.nodes[static_cast<size_t>(node.parent)].id.path
                  : std::string("-")) +
             "\n";
    }
  }
  return out;
}

// The frozen driver configurations, keyed by fixture name.
inline std::vector<std::string> GoldenDriverNames() {
  return {"basic", "mrsn", "progressive_perblock", "progressive_pertree",
          "stats"};
}

// Runs one frozen driver configuration. With `trace` non-null the run is
// recorded (which must not change the returned dump — tracing is
// observational; driver_matrix_test checks exactly that). `backend` selects
// the execution engine: the MR contract makes the dump byte-identical
// across backends, which executor_diff_test checks against the fixtures.
// `threads` overrides GoldenCluster()'s execution_threads when > 0.
// `budget` sets the shuffle memory budget (default: spilling off) — the
// dump must not depend on it.
inline std::string RunGoldenDriver(
    const std::string& name, TraceRecorder* trace = nullptr,
    ExecutionBackend backend = ExecutionBackend::kSimulated,
    int threads = 0, const ShuffleBudget& budget = {}) {
  const GoldenWorkload w = MakeGoldenWorkload();
  const SortedNeighborMechanism sn;
  ClusterConfig cluster = GoldenCluster();
  cluster.backend = backend;
  if (threads > 0) cluster.execution_threads = threads;
  cluster.trace = trace;
  cluster.shuffle_budget = budget;
  if (name == "basic") {
    // Basic uses the main blocking functions only.
    std::vector<FamilySpec> mains;
    for (int f = 0; f < w.blocking.num_families(); ++f) {
      FamilySpec spec = w.blocking.family(f);
      spec.prefix_lens = {spec.prefix_lens.front()};
      mains.push_back(std::move(spec));
    }
    BasicErOptions options;
    options.cluster = cluster;
    options.popcorn_threshold = 0.001;
    const BasicEr er(BlockingConfig(mains), w.match, sn, options);
    return DumpErRunResult(er.Run(w.data.dataset), w.data.truth);
  }
  if (name == "mrsn") {
    MrsnOptions options;
    options.cluster = cluster;
    options.window = 10;
    const MrsnEr er(w.blocking, w.match, options);
    return DumpErRunResult(er.Run(w.data.dataset), w.data.truth);
  }
  if (name == "progressive_perblock" || name == "progressive_pertree") {
    const ProbabilityModel prob =
        ProbabilityModel::Train(w.train.dataset, w.train.truth, w.blocking);
    ProgressiveErOptions options;
    options.cluster = cluster;
    options.map_emission = name == "progressive_pertree"
                               ? MapEmission::kPerTree
                               : MapEmission::kPerBlock;
    const ProgressiveEr er(w.blocking, w.match, sn, prob, options);
    return DumpErRunResult(er.Run(w.data.dataset), w.data.truth);
  }
  if (name == "stats") {
    const StatsJobOutput out =
        RunStatisticsJob(w.data.dataset, w.blocking, cluster, 4, 3);
    return DumpForests(out.forests);
  }
  return "unknown driver: " + name + "\n";
}

// The frozen trace fixture: Chrome trace_event JSON of the traced
// progressive_perblock run (tests/golden/trace_progressive.golden). Any
// schedule change shows up as a diff here.
inline std::string GoldenTraceJson() {
  TraceRecorder recorder;
  RunGoldenDriver("progressive_perblock", &recorder);
  return recorder.ToChromeJson();
}

}  // namespace testing_util
}  // namespace progres

#endif  // PROGRES_TESTS_ER_GOLDEN_UTIL_H_

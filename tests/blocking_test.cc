#include <gtest/gtest.h>

#include "blocking/blocking_function.h"
#include "blocking/forest.h"
#include "datagen/generators.h"

namespace progres {
namespace {

Entity MakeEntity(EntityId id, std::vector<std::string> attributes) {
  Entity e;
  e.id = id;
  e.attributes = std::move(attributes);
  return e;
}

BlockingConfig ToyConfig() {
  // X: name prefix 2 (dominating), Y: state (Table I).
  return BlockingConfig({{"X", 0, {2}, -1}, {"Y", 1, {2}, -1}});
}

TEST(BlockingFunctionTest, KeyIsLowercasePrefix) {
  const BlockingConfig config({{"X", 0, {2, 4}, -1}});
  const Entity e = MakeEntity(0, {"John Lopez"});
  EXPECT_EQ(config.Key(0, 1, e), "jo");
  EXPECT_EQ(config.Key(0, 2, e), "john");
}

TEST(BlockingFunctionTest, KeyOfShortValue) {
  const BlockingConfig config({{"X", 0, {4}, -1}});
  EXPECT_EQ(config.Key(0, 1, MakeEntity(0, {"ab"})), "ab");
  EXPECT_EQ(config.Key(0, 1, MakeEntity(1, {""})), "");
}

TEST(BlockingFunctionTest, PathJoinsLevels) {
  const BlockingConfig config({{"X", 0, {2, 4}, -1}});
  const Entity e = MakeEntity(0, {"John"});
  const std::string expected =
      std::string("jo") + kPathSeparator + "john";
  EXPECT_EQ(config.Path(0, 2, e), expected);
}

TEST(BlockingFunctionTest, SortAttributeDefaultsToBlockingAttribute) {
  const BlockingConfig config({{"X", 2, {3}, -1}, {"Y", 0, {3}, 1}});
  EXPECT_EQ(config.SortAttribute(0), 2);
  EXPECT_EQ(config.SortAttribute(1), 1);
}

// ------------------------------------------------- forests on Table I

TEST(ForestTest, TableIRootBlocks) {
  const LabeledDataset toy = GeneratePeopleToy();
  const BlockingConfig config = ToyConfig();
  const std::vector<Forest> forests =
      BuildForests(toy.dataset, config, /*keep_members=*/true);
  ASSERT_EQ(forests.size(), 2u);

  // X1 partitions the dataset into 5 blocks: {e1,e2,e3,e9}=jo, {e4,e7}=ch,
  // {e5}=gh, {e6}=ma, {e8}=wi (ids are 0-based here).
  const Forest& x = forests[0];
  ASSERT_EQ(x.roots.size(), 5u);
  EXPECT_EQ(x.node(x.Find("jo")).size, 4);
  EXPECT_EQ(x.node(x.Find("ch")).size, 2);
  EXPECT_EQ(x.node(x.Find("gh")).size, 1);
  EXPECT_EQ(x.node(x.Find("ma")).size, 1);
  EXPECT_EQ(x.node(x.Find("wi")).size, 1);

  // Y1 partitions by state: AZ={e3,e6,e7,e8}, HI={e1,e2}, LA={e4,e5,e9}.
  const Forest& y = forests[1];
  ASSERT_EQ(y.roots.size(), 3u);
  EXPECT_EQ(y.node(y.Find("az")).size, 4);
  EXPECT_EQ(y.node(y.Find("hi")).size, 2);
  EXPECT_EQ(y.node(y.Find("la")).size, 3);
}

TEST(ForestTest, TableIUncoveredPairs) {
  const LabeledDataset toy = GeneratePeopleToy();
  const BlockingConfig config = ToyConfig();
  std::vector<Forest> forests =
      BuildForests(toy.dataset, config, /*keep_members=*/false);
  ComputeUncoveredPairs(toy.dataset, config, &forests);

  // X is the most dominating family: Uncov = 0 everywhere.
  for (const BlockNode& node : forests[0].nodes) EXPECT_EQ(node.uncov, 0);

  // HI = {John Lopez, John Lopez}: both share X-root "jo" -> 1 uncovered
  // pair. AZ and LA members all have distinct X-roots -> 0.
  const Forest& y = forests[1];
  EXPECT_EQ(y.node(y.Find("hi")).uncov, 1);
  EXPECT_EQ(y.node(y.Find("az")).uncov, 0);
  EXPECT_EQ(y.node(y.Find("la")).uncov, 0);
  EXPECT_EQ(y.node(y.Find("hi")).cov(), 0);
  EXPECT_EQ(y.node(y.Find("la")).cov(), 3);
}

TEST(ForestTest, SubBlockingBuildsTrees) {
  const LabeledDataset toy = GeneratePeopleToy();
  const BlockingConfig config({{"X", 0, {2, 4}, -1}});
  const std::vector<Forest> forests =
      BuildForests(toy.dataset, config, /*keep_members=*/true);
  const Forest& x = forests[0];

  const int jo = x.Find("jo");
  ASSERT_GE(jo, 0);
  // "jo" splits into "john" (3 entities) and "joey" (1 entity).
  ASSERT_EQ(x.node(jo).children.size(), 2u);
  const std::string john_path = std::string("jo") + kPathSeparator + "john";
  const std::string joey_path = std::string("jo") + kPathSeparator + "joey";
  EXPECT_EQ(x.node(x.Find(john_path)).size, 3);
  EXPECT_EQ(x.node(x.Find(joey_path)).size, 1);
  EXPECT_EQ(x.node(x.Find(john_path)).parent, jo);
  EXPECT_EQ(x.node(x.Find(john_path)).id.level, 2);
}

TEST(ForestTest, ChildSizesSumToParent) {
  PublicationConfig gen;
  gen.num_entities = 1500;
  gen.seed = 4;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config({{"X", kPubTitle, {2, 4, 8}, -1}});
  const std::vector<Forest> forests =
      BuildForests(data.dataset, config, /*keep_members=*/false);
  for (const BlockNode& node : forests[0].nodes) {
    if (node.is_leaf()) continue;
    int64_t sum = 0;
    for (int c : node.children) sum += forests[0].node(c).size;
    EXPECT_EQ(sum, node.size) << "block " << node.id.path;
  }
}

TEST(ForestTest, RootSizesSumToDatasetSize) {
  PublicationConfig gen;
  gen.num_entities = 1200;
  gen.seed = 6;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config({{"X", kPubTitle, {2, 4}, -1},
                               {"Y", kPubAbstract, {3}, -1},
                               {"Z", kPubVenue, {3}, -1}});
  const std::vector<Forest> forests =
      BuildForests(data.dataset, config, /*keep_members=*/false);
  for (const Forest& forest : forests) {
    int64_t total = 0;
    for (int r : forest.roots) total += forest.node(r).size;
    EXPECT_EQ(total, data.dataset.size());
  }
}

TEST(ForestTest, MembersKeptOnlyWhenRequested) {
  const LabeledDataset toy = GeneratePeopleToy();
  const BlockingConfig config = ToyConfig();
  const std::vector<Forest> with =
      BuildForests(toy.dataset, config, /*keep_members=*/true);
  const std::vector<Forest> without =
      BuildForests(toy.dataset, config, /*keep_members=*/false);
  EXPECT_FALSE(with[0].nodes[0].entities.empty());
  EXPECT_TRUE(without[0].nodes[0].entities.empty());
}

TEST(UncoveredFromJointCountsTest, PaperFigure4Example) {
  // Y_1^1 of Fig. 4: |Y| = 30, overlap with X_1^1 = 10 entities and with
  // X_2^1 = 20 entities. Uncov(Y_1^1) = Pairs(10) + Pairs(20) = 235.
  std::unordered_map<std::string, int64_t> joint;
  joint["x1"] = 10;
  joint["x2"] = 20;
  EXPECT_EQ(UncoveredFromJointCounts(joint, 1), 235);
}

TEST(UncoveredFromJointCountsTest, TwoDominatingFamilies) {
  // 4 entities all sharing both dominating roots: pairs shared with X = 6,
  // with Y = 6, with both = 6 -> 6 + 6 - 6 = 6.
  std::unordered_map<std::string, int64_t> joint;
  joint[std::string("x") + kTupleSeparator + "y"] = 4;
  EXPECT_EQ(UncoveredFromJointCounts(joint, 2), 6);
}

TEST(UncoveredFromJointCountsTest, DisjointTuplesDoNotOverlap) {
  std::unordered_map<std::string, int64_t> joint;
  joint[std::string("x1") + kTupleSeparator + "y1"] = 1;
  joint[std::string("x2") + kTupleSeparator + "y2"] = 1;
  EXPECT_EQ(UncoveredFromJointCounts(joint, 2), 0);
}

TEST(UncoveredFromJointCountsTest, PartialOverlapInclusionExclusion) {
  // Entities: 2 with (x1, y1), 1 with (x1, y2). Pairs sharing X-root x1:
  // Pairs(3) = 3. Pairs sharing Y-root y1: 1. Pairs sharing both: 1.
  // Uncov = 3 + 1 - 1 = 3.
  std::unordered_map<std::string, int64_t> joint;
  joint[std::string("x1") + kTupleSeparator + "y1"] = 2;
  joint[std::string("x1") + kTupleSeparator + "y2"] = 1;
  EXPECT_EQ(UncoveredFromJointCounts(joint, 2), 3);
}

}  // namespace
}  // namespace progres

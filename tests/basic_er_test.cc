#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/basic_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  return cluster;
}

BlockingConfig PublicationBlocking() {
  // Basic uses the main blocking functions only (one level per family).
  return BlockingConfig({{"X", kPubTitle, {2}, -1},
                         {"Y", kPubAbstract, {3}, -1},
                         {"Z", kPubVenue, {3}, -1}});
}

MatchFunction PublicationMatch() {
  return MatchFunction(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
}

LabeledDataset SmallData(uint64_t seed = 81) {
  PublicationConfig gen;
  gen.num_entities = 2000;
  gen.seed = seed;
  return GeneratePublications(gen);
}

TEST(BasicErTest, FullRunReachesHighRecall) {
  const LabeledDataset data = SmallData();
  const BlockingConfig blocking = PublicationBlocking();
  const MatchFunction match = PublicationMatch();
  const SortedNeighborMechanism sn;
  BasicErOptions options;
  options.cluster = TestCluster();
  options.window = 15;
  options.popcorn_threshold = 0.0;  // Basic F
  const BasicEr basic(blocking, match, sn, options);
  const ErRunResult result = basic.Run(data.dataset);

  const RecallCurve curve = RecallCurve::FromEvents(result.events, data.truth);
  // Window-15 SN over the big skewed main blocks misses pairs whose ranks
  // drift apart; Basic tops out well below the progressive approach (the
  // paper's Basic F also stops short of the highest possible recall).
  EXPECT_GT(curve.final_recall(), 0.6);
  EXPECT_GT(result.comparisons, 0);
  EXPECT_GT(result.total_time, 0.0);
}

TEST(BasicErTest, PopcornTradesRecallForTime) {
  const LabeledDataset data = SmallData();
  const BlockingConfig blocking = PublicationBlocking();
  const MatchFunction match = PublicationMatch();
  const SortedNeighborMechanism sn;

  BasicErOptions full_options;
  full_options.cluster = TestCluster();
  full_options.popcorn_threshold = 0.0;
  const ErRunResult full =
      BasicEr(blocking, match, sn, full_options).Run(data.dataset);

  BasicErOptions aggressive = full_options;
  aggressive.popcorn_threshold = 0.1;  // stop early everywhere
  const ErRunResult stopped =
      BasicEr(blocking, match, sn, aggressive).Run(data.dataset);

  EXPECT_LT(stopped.comparisons, full.comparisons);
  EXPECT_LT(stopped.total_time, full.total_time);
  const RecallCurve full_curve =
      RecallCurve::FromEvents(full.events, data.truth);
  const RecallCurve stopped_curve =
      RecallCurve::FromEvents(stopped.events, data.truth);
  EXPECT_LE(stopped_curve.final_recall(), full_curve.final_recall());
}

TEST(BasicErTest, KolbEliminatesRedundantResolutions) {
  const LabeledDataset data = SmallData();
  const BlockingConfig blocking = PublicationBlocking();
  const MatchFunction match = PublicationMatch();
  const SortedNeighborMechanism sn;

  BasicErOptions with;
  with.cluster = TestCluster();
  with.kolb_redundancy = true;
  const ErRunResult kolb =
      BasicEr(blocking, match, sn, with).Run(data.dataset);

  BasicErOptions without = with;
  without.kolb_redundancy = false;
  const ErRunResult redundant =
      BasicEr(blocking, match, sn, without).Run(data.dataset);

  // Kolb skips shared pairs in non-minimal blocks.
  EXPECT_GT(kolb.skipped_count, 0);
  EXPECT_LT(kolb.comparisons, redundant.comparisons);
  // Kolb assigns a shared pair to its smallest-key block regardless of
  // whether the window there ever enumerates it, so some duplicates are
  // lost -- the reason the paper gives for Basic F not achieving the highest
  // possible final recall. The loss must stay moderate.
  EXPECT_LE(kolb.duplicates.size(), redundant.duplicates.size());
  EXPECT_GT(static_cast<double>(kolb.duplicates.size()),
            0.6 * static_cast<double>(redundant.duplicates.size()));
}

TEST(BasicErTest, Deterministic) {
  const LabeledDataset data = SmallData();
  const BlockingConfig blocking = PublicationBlocking();
  const MatchFunction match = PublicationMatch();
  const SortedNeighborMechanism sn;
  BasicErOptions options;
  options.cluster = TestCluster();
  const ErRunResult a = BasicEr(blocking, match, sn, options).Run(data.dataset);
  const ErRunResult b = BasicEr(blocking, match, sn, options).Run(data.dataset);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.comparisons, b.comparisons);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(BasicErTest, EventsWithinRunWindow) {
  const LabeledDataset data = SmallData();
  const BlockingConfig blocking = PublicationBlocking();
  const MatchFunction match = PublicationMatch();
  const SortedNeighborMechanism sn;
  BasicErOptions options;
  options.cluster = TestCluster();
  const ErRunResult result =
      BasicEr(blocking, match, sn, options).Run(data.dataset);
  for (const DuplicateEvent& event : result.events) {
    EXPECT_GE(event.time, result.preprocessing_end);
    EXPECT_LE(event.time, result.total_time + 1e-9);
  }
}

TEST(BasicErTest, ChunksPartitionEvents) {
  const LabeledDataset data = SmallData();
  const BlockingConfig blocking = PublicationBlocking();
  const MatchFunction match = PublicationMatch();
  const SortedNeighborMechanism sn;
  BasicErOptions options;
  options.cluster = TestCluster();
  options.alpha = 500.0;
  const ErRunResult result =
      BasicEr(blocking, match, sn, options).Run(data.dataset);
  size_t chunk_pairs = 0;
  for (const ResultChunk& chunk : result.chunks) {
    chunk_pairs += chunk.pairs.size();
    EXPECT_LE(chunk.cost_begin, chunk.cost_end);
  }
  EXPECT_EQ(chunk_pairs, result.events.size());
  // Chunked visibility lags fine-grained visibility.
  const RecallCurve fine = RecallCurve::FromEvents(result.events, data.truth);
  const RecallCurve coarse =
      RecallCurve::FromEvents(EventsFromChunks(result.chunks), data.truth);
  EXPECT_DOUBLE_EQ(fine.final_recall(), coarse.final_recall());
  EXPECT_GE(coarse.TimeToRecall(0.3), fine.TimeToRecall(0.3));
}

}  // namespace
}  // namespace progres

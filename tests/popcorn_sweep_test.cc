// Parameterized sweeps over the Basic baseline's tuning space: the
// popcorn-threshold / window grid that Table III explores. Asserts the
// monotone trade-offs the paper describes rather than point values.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/basic_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

struct SweepResult {
  double final_recall = 0.0;
  double total_time = 0.0;
  int64_t comparisons = 0;
};

class BasicSweepTest : public testing::TestWithParam<int> {
 protected:
  static SweepResult RunBasic(const LabeledDataset& data, int window,
                              double threshold) {
    const BlockingConfig blocking({{"X", kPubTitle, {2}, -1},
                                   {"Y", kPubAbstract, {3}, -1},
                                   {"Z", kPubVenue, {3}, -1}});
    const MatchFunction match(
        {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
         {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
         {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
        0.75);
    const SortedNeighborMechanism sn;
    BasicErOptions options;
    options.cluster.machines = 2;
    options.cluster.execution_threads = 4;
    options.window = window;
    options.popcorn_threshold = threshold;
    const ErRunResult run =
        BasicEr(blocking, match, sn, options).Run(data.dataset);
    const RecallCurve curve = RecallCurve::FromEvents(run.events, data.truth);
    return {curve.final_recall(), run.total_time, run.comparisons};
  }
};

TEST_P(BasicSweepTest, ConservativeThresholdsRaiseRecallAndCost) {
  PublicationConfig gen;
  gen.num_entities = 2500;
  gen.seed = static_cast<uint64_t>(GetParam());
  const LabeledDataset data = GeneratePublications(gen);

  // From aggressive to conservative to F.
  const std::vector<double> thresholds = {0.1, 0.01, 0.001, 0.0};
  SweepResult previous{};
  bool first = true;
  for (double threshold : thresholds) {
    const SweepResult result = RunBasic(data, 15, threshold);
    if (!first) {
      // More conservative never loses recall and never gets cheaper.
      EXPECT_GE(result.final_recall + 1e-9, previous.final_recall)
          << "threshold " << threshold;
      EXPECT_GE(result.comparisons, previous.comparisons);
    }
    previous = result;
    first = false;
  }
}

TEST_P(BasicSweepTest, LargerWindowRaisesRecallCeiling) {
  PublicationConfig gen;
  gen.num_entities = 2500;
  gen.seed = static_cast<uint64_t>(GetParam() + 50);
  const LabeledDataset data = GeneratePublications(gen);
  const SweepResult w5 = RunBasic(data, 5, 0.0);
  const SweepResult w15 = RunBasic(data, 15, 0.0);
  EXPECT_GE(w15.final_recall + 1e-9, w5.final_recall);
  EXPECT_GT(w15.comparisons, w5.comparisons);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BasicSweepTest, testing::Values(1, 2, 3));

}  // namespace
}  // namespace progres

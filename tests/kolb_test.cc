#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "redundancy/kolb.h"

namespace progres {
namespace {

Entity MakeEntity(EntityId id, std::vector<std::string> attributes) {
  Entity e;
  e.id = id;
  e.attributes = std::move(attributes);
  return e;
}

TEST(KolbTest, SingleCommonBlockIsResponsible) {
  // Pair shares family 0 only.
  const BlockingConfig config({{"X", 0, {2}, -1}, {"Y", 1, {2}, -1}});
  const Entity a = MakeEntity(0, {"alpha", "hi"});
  const Entity b = MakeEntity(1, {"alpine", "la"});
  EXPECT_TRUE(KolbShouldResolve(a, b, 0, config));
}

TEST(KolbTest, SmallestKeyWins) {
  // Pair shares both families: keys "jo" (family 0) and "az" (family 1).
  // "az" < "jo" so the family-1 block is responsible.
  const BlockingConfig config({{"X", 0, {2}, -1}, {"Y", 1, {2}, -1}});
  const Entity a = MakeEntity(0, {"john", "az"});
  const Entity b = MakeEntity(1, {"john", "az"});
  EXPECT_FALSE(KolbShouldResolve(a, b, 0, config));
  EXPECT_TRUE(KolbShouldResolve(a, b, 1, config));
}

TEST(KolbTest, FunctionIdBreaksKeyTies) {
  // Identical key strings in both families: the lower family id wins.
  const BlockingConfig config({{"X", 0, {2}, -1}, {"Y", 1, {2}, -1}});
  const Entity a = MakeEntity(0, {"same", "same"});
  const Entity b = MakeEntity(1, {"same", "same"});
  EXPECT_TRUE(KolbShouldResolve(a, b, 0, config));
  EXPECT_FALSE(KolbShouldResolve(a, b, 1, config));
}

// Property: over generated data, every co-blocked pair has exactly one
// responsible main block.
TEST(KolbTest, ExactlyOneResponsibleBlock) {
  PublicationConfig gen;
  gen.num_entities = 1500;
  gen.seed = 61;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config({{"X", kPubTitle, {2}, -1},
                               {"Y", kPubAbstract, {3}, -1},
                               {"Z", kPubVenue, {3}, -1}});
  const Dataset& d = data.dataset;
  int checked = 0;
  for (EntityId a = 0; a < d.size() && checked < 1000; ++a) {
    for (EntityId b = a + 1; b < std::min<int64_t>(d.size(), a + 10); ++b) {
      int shared = 0;
      int responsible = 0;
      for (int f = 0; f < config.num_families(); ++f) {
        if (config.Key(f, 1, d.entity(a)) != config.Key(f, 1, d.entity(b))) {
          continue;
        }
        ++shared;
        if (KolbShouldResolve(d.entity(a), d.entity(b), f, config)) {
          ++responsible;
        }
      }
      if (shared == 0) continue;
      ++checked;
      EXPECT_EQ(responsible, 1);
    }
  }
  EXPECT_GT(checked, 100);
}

}  // namespace
}  // namespace progres

// End-to-end checks of the (n+1)st dominance-list value (Sec. V): after the
// scheduler splits subtrees, pairs inside a split subtree must be skipped by
// every enclosing block of the same tree and resolved exactly once.

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "blocking/forest.h"
#include "datagen/generators.h"
#include "redundancy/dominance.h"

namespace progres {
namespace {

struct Fixture {
  LabeledDataset data;
  BlockingConfig config{std::vector<FamilySpec>{}};
  ProbabilityModel prob;
  std::vector<AnnotatedForest> forests;
  ProgressiveSchedule schedule;

  Fixture() {
    PublicationConfig gen;
    gen.num_entities = 6000;  // skewed enough to force splits
    gen.seed = 180;
    data = GeneratePublications(gen);
    config = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                             {"Y", kPubAbstract, {3, 5}, -1},
                             {"Z", kPubVenue, {3, 5}, -1}});
    std::vector<Forest> raw =
        BuildForests(data.dataset, config, /*keep_members=*/false);
    ComputeUncoveredPairs(data.dataset, config, &raw);
    prob = ProbabilityModel::Train(data.dataset, data.truth, config);
    EstimateParams params;
    forests = AnnotateForests(raw, params, prob, data.dataset.size());
    ScheduleParams sp;
    sp.num_reduce_tasks = 8;
    sp.scheduler = TreeScheduler::kOurs;
    schedule = GenerateSchedule(&forests, sp);
  }

  // A split-off tree root: a tree root that still has a hierarchy parent
  // (equal-size collapse can also promote level-2 blocks to roots, but those
  // have no parent). Returns -1 if none.
  int FindSplitRoot(int family) const {
    const AnnotatedForest& forest = forests[static_cast<size_t>(family)];
    for (int root : forest.tree_roots()) {
      if (forest.block(root).parent >= 0 && forest.block(root).size >= 4) {
        return root;
      }
    }
    return -1;
  }

  // Some entity whose chain passes through `node`.
  std::vector<EntityId> MembersOf(int family, int node,
                                  int max_members) const {
    const AnnotatedForest& forest = forests[static_cast<size_t>(family)];
    const AnnotatedBlock& block = forest.block(node);
    std::vector<EntityId> members;
    for (const Entity& e : data.dataset.entities()) {
      if (config.Path(family, block.id.level, e) == block.id.path) {
        members.push_back(e.id);
        if (static_cast<int>(members.size()) >= max_members) break;
      }
    }
    return members;
  }
};

TEST(DominanceSplitTest, SchedulerProducedSplits) {
  const Fixture fx;
  EXPECT_GE(fx.FindSplitRoot(0), 0) << "expected at least one split";
}

TEST(DominanceSplitTest, SplitSubtreeOwnsItsPairs) {
  const Fixture fx;
  const int family = 0;
  const int split_root = fx.FindSplitRoot(family);
  ASSERT_GE(split_root, 0);
  const AnnotatedForest& forest = fx.forests[static_cast<size_t>(family)];

  // The enclosing (original) tree root above the split root.
  int ancestor = forest.block(split_root).parent;
  ASSERT_GE(ancestor, 0);
  const int enclosing_root = forest.FindTreeRoot(ancestor);

  // Two entities inside the split subtree, emitted for the ENCLOSING root:
  // both lists must carry the same (n+1)st value and SHOULD-RESOLVE must
  // refuse (the split tree owns the pair).
  const std::vector<EntityId> members = fx.MembersOf(family, split_root, 2);
  ASSERT_EQ(members.size(), 2u);
  const DominanceList a =
      BuildDominanceList(fx.data.dataset.entity(members[0]), family,
                         enclosing_root, fx.config, fx.forests, fx.schedule);
  const DominanceList b =
      BuildDominanceList(fx.data.dataset.entity(members[1]), family,
                         enclosing_root, fx.config, fx.forests, fx.schedule);
  const int n = fx.config.num_families();
  ASSERT_GT(a.values.size(), static_cast<size_t>(n));
  ASSERT_GT(b.values.size(), static_cast<size_t>(n));
  EXPECT_EQ(a.values[static_cast<size_t>(n)], b.values[static_cast<size_t>(n)]);
  EXPECT_FALSE(ShouldResolve(a, b, /*index=*/family + 1, n));

  // Emitted for the split root itself, the pair IS resolvable there.
  const DominanceList c =
      BuildDominanceList(fx.data.dataset.entity(members[0]), family,
                         split_root, fx.config, fx.forests, fx.schedule);
  const DominanceList d =
      BuildDominanceList(fx.data.dataset.entity(members[1]), family,
                         split_root, fx.config, fx.forests, fx.schedule);
  EXPECT_TRUE(ShouldResolve(c, d, family + 1, n));
}

TEST(DominanceSplitTest, OwnFamilyValueIsSplitAware) {
  const Fixture fx;
  const int family = 0;
  const int split_root = fx.FindSplitRoot(family);
  ASSERT_GE(split_root, 0);
  const AnnotatedForest& forest = fx.forests[static_cast<size_t>(family)];
  const std::vector<EntityId> members = fx.MembersOf(family, split_root, 1);
  ASSERT_EQ(members.size(), 1u);

  // Emitted for a block of the split tree, position Index(X)-1 must be the
  // split tree's dominance value, not the original root's.
  const DominanceList list =
      BuildDominanceList(fx.data.dataset.entity(members[0]), family,
                         split_root, fx.config, fx.forests, fx.schedule);
  const int32_t split_dom =
      fx.schedule.dominance.at(BlockRefKey(family, split_root));
  EXPECT_EQ(list.values[static_cast<size_t>(family)], split_dom);
  const int original_root = forest.FindTreeRoot(forest.block(split_root).parent);
  const int32_t original_dom =
      fx.schedule.dominance.at(BlockRefKey(family, original_root));
  EXPECT_NE(split_dom, original_dom);
}

TEST(DominanceSplitTest, ForeignFamilyValueUsesMainBlockTree) {
  const Fixture fx;
  // For any entity emitted toward a family-0 block, position 1 must equal
  // the dominance value of the tree containing its family-1 MAIN block.
  const Entity& e = fx.data.dataset.entity(0);
  const AnnotatedForest& forest0 = fx.forests[0];
  const int node0 = forest0.Find(fx.config.Path(0, 1, e));
  ASSERT_GE(node0, 0);
  const DominanceList list = BuildDominanceList(e, 0, node0, fx.config,
                                                fx.forests, fx.schedule);
  const AnnotatedForest& forest1 = fx.forests[1];
  const int main1 = forest1.Find(fx.config.Path(1, 1, e));
  ASSERT_GE(main1, 0);
  const int root1 = forest1.FindTreeRoot(main1);
  EXPECT_EQ(list.values[1],
            fx.schedule.dominance.at(BlockRefKey(1, root1)));
}

}  // namespace
}  // namespace progres

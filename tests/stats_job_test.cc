#include <gtest/gtest.h>

#include "core/stats_job.h"
#include "datagen/generators.h"

namespace progres {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig cluster;
  cluster.machines = 3;
  cluster.execution_threads = 4;
  return cluster;
}

// The MR statistics job must agree block-for-block with the in-memory
// reference implementation (BuildForests + ComputeUncoveredPairs).
TEST(StatsJobTest, MatchesInMemoryReference) {
  PublicationConfig gen;
  gen.num_entities = 3000;
  gen.seed = 71;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config({{"X", kPubTitle, {2, 4, 8}, -1},
                               {"Y", kPubAbstract, {3, 5}, -1},
                               {"Z", kPubVenue, {3, 5}, -1}});

  std::vector<Forest> reference =
      BuildForests(data.dataset, config, /*keep_members=*/false);
  ComputeUncoveredPairs(data.dataset, config, &reference);

  const StatsJobOutput mr = RunStatisticsJob(data.dataset, config,
                                             TestCluster(), 6, 6);
  ASSERT_EQ(mr.forests.size(), reference.size());
  for (size_t f = 0; f < reference.size(); ++f) {
    const Forest& expected = reference[f];
    const Forest& actual = mr.forests[f];
    ASSERT_EQ(actual.nodes.size(), expected.nodes.size()) << "family " << f;
    ASSERT_EQ(actual.roots.size(), expected.roots.size());
    for (const BlockNode& node : expected.nodes) {
      const int found = actual.Find(node.id.path);
      ASSERT_GE(found, 0) << "missing block " << node.id.path;
      const BlockNode& got = actual.node(found);
      EXPECT_EQ(got.size, node.size) << node.id.path;
      EXPECT_EQ(got.uncov, node.uncov) << node.id.path;
      EXPECT_EQ(got.id.level, node.id.level);
      EXPECT_EQ(got.children.size(), node.children.size());
      // Parent paths must agree.
      if (node.parent >= 0) {
        ASSERT_GE(got.parent, 0);
        EXPECT_EQ(actual.node(got.parent).id.path,
                  expected.node(node.parent).id.path);
      } else {
        EXPECT_LT(got.parent, 0);
      }
    }
  }
}

TEST(StatsJobTest, TimingAdvances) {
  const LabeledDataset toy = GeneratePeopleToy();
  const BlockingConfig config({{"X", 0, {2, 4}, -1}, {"Y", 1, {2}, -1}});
  const StatsJobOutput out =
      RunStatisticsJob(toy.dataset, config, TestCluster(), 2, 2, 100.0);
  EXPECT_DOUBLE_EQ(out.timing.start, 100.0);
  EXPECT_GT(out.timing.end, 100.0);
  EXPECT_GE(out.timing.map_end, 100.0);
}

TEST(StatsJobTest, TaskCountInsensitive) {
  // Different map/reduce parallelism must not change the statistics.
  PublicationConfig gen;
  gen.num_entities = 800;
  gen.seed = 72;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config(
      {{"X", kPubTitle, {2, 4}, -1}, {"Y", kPubVenue, {3}, -1}});
  const StatsJobOutput a =
      RunStatisticsJob(data.dataset, config, TestCluster(), 1, 1);
  const StatsJobOutput b =
      RunStatisticsJob(data.dataset, config, TestCluster(), 7, 5);
  ASSERT_EQ(a.forests.size(), b.forests.size());
  for (size_t f = 0; f < a.forests.size(); ++f) {
    ASSERT_EQ(a.forests[f].nodes.size(), b.forests[f].nodes.size());
    for (const BlockNode& node : a.forests[f].nodes) {
      const int found = b.forests[f].Find(node.id.path);
      ASSERT_GE(found, 0);
      EXPECT_EQ(b.forests[f].node(found).size, node.size);
      EXPECT_EQ(b.forests[f].node(found).uncov, node.uncov);
    }
  }
}

}  // namespace
}  // namespace progres

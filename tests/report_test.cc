#include <algorithm>

#include <gtest/gtest.h>

#include "eval/report.h"

namespace progres {
namespace {

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable table({"name", "value"});
  table.AddRow({"recall", "0.99"});
  table.AddRow({"time", "10126"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("recall"), std::string::npos);
  EXPECT_NE(out.find("10126"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTableTest, PadsColumnsToWidestCell) {
  TextTable table({"h", "x"});
  table.AddRow({"longvalue", "y"});
  const std::string out = table.ToString();
  // Header line must be at least as wide as the widest row content.
  const size_t header_end = out.find('\n');
  const size_t row_start = out.rfind('\n', out.size() - 2);
  EXPECT_GE(header_end, std::string("longvalue").size());
  (void)row_start;
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(0.5, 4), "0.5000");
}

TEST(FormatCurveSeriesTest, EmitsRequestedSamples) {
  const GroundTruth truth({1, 1});
  const RecallCurve curve =
      RecallCurve::FromEvents({{2.0, MakePairKey(0, 1)}}, truth);
  const std::string out = FormatCurveSeries("test", curve, 10.0, 5);
  EXPECT_NE(out.find("# series: test"), std::string::npos);
  // 5 sample lines plus the header.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
  EXPECT_NE(out.find("1.0000"), std::string::npos);
}

}  // namespace
}  // namespace progres

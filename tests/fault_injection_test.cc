// Deterministic fault-injection tests for the MapReduce runtime: injected
// map/reduce attempt failures at every attempt index must leave outputs,
// per-task stats and non-"mr." counters byte-identical to a fault-free run,
// exhausting max_attempts must fail the job cleanly, and the fault plan must
// compose with the end-to-end ER jobs (which reset their external per-task
// sinks through the task-abort hook).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/progressive_er.h"
#include "core/stats_job.h"
#include "datagen/generators.h"
#include "mapreduce/fault.h"
#include "mapreduce/job.h"
#include "mechanism/sorted_neighbor.h"
#include "mr_test_util.h"

namespace progres {
namespace {

using testing_util::CountersMinusMr;
using testing_util::ValidateAttemptSchedule;

constexpr int kMapTasks = 4;
constexpr int kReduceTasks = 3;

ClusterConfig TestCluster(FaultConfig fault = FaultConfig()) {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.seconds_per_cost_unit = 1.0;
  cluster.fault = std::move(fault);
  return cluster;
}

// A job exercising every hook the ER drivers rely on: custom partitioner,
// per-record + manual cost, counters, combiner, and a reduce cleanup that
// emits. Deterministic for a fixed input.
using Job = MapReduceJob<int, int, int>;

Job::Result RunHookedJob(const ClusterConfig& cluster,
                         std::vector<std::vector<int>>* sinks = nullptr) {
  std::vector<int> input;
  for (int i = 0; i < 229; ++i) input.push_back(i * 37 % 101);

  Job job(kMapTasks, kReduceTasks);
  job.set_map_cost_per_record(0.5);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  job.set_combiner([](const int& key, std::vector<int>* values,
                      std::vector<std::pair<int, int>>* out) {
    int sum = 0;
    for (int v : *values) sum += v;
    out->emplace_back(key, sum);
  });
  job.set_reduce_cleanup([](Job::ReduceContext* ctx) {
    ctx->clock().Charge(2.0);
    ctx->Emit(-1, ctx->task_id());
  });
  if (sinks != nullptr) {
    sinks->assign(kReduceTasks, {});
    job.set_task_abort([sinks](TaskPhase phase, int task_id, int /*attempt*/) {
      if (phase == TaskPhase::kReduce) {
        (*sinks)[static_cast<size_t>(task_id)].clear();
      }
    });
  }
  return job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->counters().Increment("map.records");
        ctx->clock().Charge(0.25);
        ctx->Emit(record % 11, record);
        if (record % 2 == 0) ctx->Emit(record % 5, 1);
      },
      [sinks](const int& key, std::vector<int>* values,
              Job::ReduceContext* ctx) {
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->counters().Increment("reduce.groups");
        ctx->clock().Charge(static_cast<double>(values->size()));
        ctx->Emit(key, sum);
        if (sinks != nullptr) {
          (*sinks)[static_cast<size_t>(ctx->task_id())].push_back(sum);
        }
      },
      cluster);
}

void ExpectSameModuloFaults(const Job::Result& expected,
                            const Job::Result& actual) {
  EXPECT_FALSE(actual.failed) << actual.error;
  EXPECT_EQ(actual.outputs, expected.outputs);
  EXPECT_EQ(CountersMinusMr(actual.counters),
            CountersMinusMr(expected.counters));
  ASSERT_EQ(actual.map_stats.size(), expected.map_stats.size());
  for (size_t t = 0; t < expected.map_stats.size(); ++t) {
    EXPECT_DOUBLE_EQ(actual.map_stats[t].cost, expected.map_stats[t].cost);
    EXPECT_EQ(actual.map_stats[t].records_in, expected.map_stats[t].records_in);
    EXPECT_EQ(actual.map_stats[t].pairs_out, expected.map_stats[t].pairs_out);
  }
  ASSERT_EQ(actual.reduce_stats.size(), expected.reduce_stats.size());
  for (size_t t = 0; t < expected.reduce_stats.size(); ++t) {
    EXPECT_DOUBLE_EQ(actual.reduce_stats[t].cost,
                     expected.reduce_stats[t].cost);
  }
}

TEST(FaultInjectionTest, MapFailuresAtEveryAttemptIndex) {
  const Job::Result baseline = RunHookedJob(TestCluster());
  for (int task = 0; task < kMapTasks; ++task) {
    for (int failures = 1; failures <= 3; ++failures) {  // max_attempts=4
      FaultConfig fault;
      fault.enabled = true;
      fault.max_attempts = 4;
      for (int a = 0; a < failures; ++a) {
        fault.injected.push_back({TaskPhase::kMap, task, a});
      }
      const Job::Result run = RunHookedJob(TestCluster(fault));
      ExpectSameModuloFaults(baseline, run);
      EXPECT_EQ(run.counters.Get("mr.failed_attempts"), failures);
      EXPECT_EQ(run.counters.Get("mr.attempts"),
                kMapTasks + kReduceTasks + failures);
    }
  }
}

TEST(FaultInjectionTest, ReduceFailuresAtEveryAttemptIndex) {
  const Job::Result baseline = RunHookedJob(TestCluster());
  for (int task = 0; task < kReduceTasks; ++task) {
    for (int failures = 1; failures <= 3; ++failures) {
      FaultConfig fault;
      fault.enabled = true;
      fault.max_attempts = 4;
      for (int a = 0; a < failures; ++a) {
        fault.injected.push_back({TaskPhase::kReduce, task, a});
      }
      const Job::Result run = RunHookedJob(TestCluster(fault));
      ExpectSameModuloFaults(baseline, run);
      EXPECT_EQ(run.counters.Get("mr.failed_attempts"), failures);
    }
  }
}

TEST(FaultInjectionTest, SeededFailuresAcrossBothPhases) {
  const Job::Result baseline = RunHookedJob(TestCluster());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    FaultConfig fault;
    fault.enabled = true;
    fault.seed = seed;
    fault.map_failure_prob = 0.4;
    fault.reduce_failure_prob = 0.4;
    fault.max_attempts = 12;
    const Job::Result run = RunHookedJob(TestCluster(fault));
    ExpectSameModuloFaults(baseline, run);
    EXPECT_GE(run.counters.Get("mr.attempts"), kMapTasks + kReduceTasks);
    ValidateAttemptSchedule(run.timing.map_attempts, kMapTasks,
                            run.timing.start, run.timing.map_end);
    ValidateAttemptSchedule(run.timing.reduce_attempts, kReduceTasks,
                            run.timing.map_end, run.timing.end);
  }
}

TEST(FaultInjectionTest, RetriesDelayTheSimulatedClockOnly) {
  const Job::Result baseline = RunHookedJob(TestCluster());
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 4;
  fault.injected.push_back({TaskPhase::kMap, 0, 0});
  fault.injected.push_back({TaskPhase::kReduce, 1, 0});
  const Job::Result run = RunHookedJob(TestCluster(fault));
  ExpectSameModuloFaults(baseline, run);
  // Failed attempts occupy slots, so the makespan can only grow.
  EXPECT_GE(run.timing.end, baseline.timing.end);
  EXPECT_EQ(run.timing.map_attempts.size(),
            baseline.timing.map_attempts.size() + 1);
  EXPECT_EQ(run.timing.reduce_attempts.size(),
            baseline.timing.reduce_attempts.size() + 1);
}

TEST(FaultInjectionTest, DeterministicAttemptScheduleAcrossRuns) {
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 99;
  fault.map_failure_prob = 0.5;
  fault.reduce_failure_prob = 0.5;
  fault.max_attempts = 10;
  const Job::Result a = RunHookedJob(TestCluster(fault));
  const Job::Result b = RunHookedJob(TestCluster(fault));
  EXPECT_EQ(a.outputs, b.outputs);
  ASSERT_EQ(a.timing.map_attempts.size(), b.timing.map_attempts.size());
  for (size_t i = 0; i < a.timing.map_attempts.size(); ++i) {
    EXPECT_EQ(a.timing.map_attempts[i].task, b.timing.map_attempts[i].task);
    EXPECT_EQ(a.timing.map_attempts[i].slot, b.timing.map_attempts[i].slot);
    EXPECT_DOUBLE_EQ(a.timing.map_attempts[i].start,
                     b.timing.map_attempts[i].start);
    EXPECT_DOUBLE_EQ(a.timing.map_attempts[i].end,
                     b.timing.map_attempts[i].end);
  }
  EXPECT_DOUBLE_EQ(a.timing.end, b.timing.end);
}

TEST(FaultInjectionTest, ExceedingMaxAttemptsFailsMapJobCleanly) {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 3;
  for (int a = 0; a < 3; ++a) {
    fault.injected.push_back({TaskPhase::kMap, 1, a});
  }
  const Job::Result run = RunHookedJob(TestCluster(fault));
  EXPECT_TRUE(run.failed);
  EXPECT_NE(run.error.find("map task 1"), std::string::npos) << run.error;
  EXPECT_TRUE(run.outputs.empty());
  EXPECT_EQ(run.counters.Get("mr.failed_attempts"), 3);
}

TEST(FaultInjectionTest, ExceedingMaxAttemptsFailsReduceJobCleanly) {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 2;
  fault.reduce_failure_prob = 1.0;  // every reduce attempt dies
  const Job::Result run = RunHookedJob(TestCluster(fault));
  EXPECT_TRUE(run.failed);
  EXPECT_NE(run.error.find("reduce task"), std::string::npos) << run.error;
  EXPECT_TRUE(run.outputs.empty());
}

TEST(FaultInjectionTest, AbortHookResetsExternalSinks) {
  std::vector<std::vector<int>> clean_sinks;
  const Job::Result baseline = RunHookedJob(TestCluster(), &clean_sinks);
  ASSERT_FALSE(baseline.failed);

  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 6;
  for (int task = 0; task < kReduceTasks; ++task) {
    for (int a = 0; a < 2; ++a) {
      fault.injected.push_back({TaskPhase::kReduce, task, a});
    }
  }
  std::vector<std::vector<int>> faulty_sinks;
  const Job::Result run = RunHookedJob(TestCluster(fault), &faulty_sinks);
  ExpectSameModuloFaults(baseline, run);
  // Without the abort hook the failed attempts would have left partial
  // sums behind; with it the external sinks match exactly.
  EXPECT_EQ(faulty_sinks, clean_sinks);
}

// ---- End-to-end: the ER jobs survive injected failures unchanged ----

TEST(FaultInjectionTest, StatisticsJobSurvivesFaults) {
  PublicationConfig gen;
  gen.num_entities = 1200;
  gen.seed = 17;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config(
      {{"X", kPubTitle, {2, 4}, -1}, {"Y", kPubVenue, {3}, -1}});

  const StatsJobOutput clean =
      RunStatisticsJob(data.dataset, config, TestCluster(), 5, 4);
  ASSERT_FALSE(clean.failed);

  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 3;
  fault.map_failure_prob = 0.3;
  fault.reduce_failure_prob = 0.3;
  fault.max_attempts = 10;
  const StatsJobOutput faulty =
      RunStatisticsJob(data.dataset, config, TestCluster(fault), 5, 4);
  ASSERT_FALSE(faulty.failed) << faulty.error;

  ASSERT_EQ(faulty.forests.size(), clean.forests.size());
  for (size_t f = 0; f < clean.forests.size(); ++f) {
    ASSERT_EQ(faulty.forests[f].nodes.size(), clean.forests[f].nodes.size());
    for (size_t n = 0; n < clean.forests[f].nodes.size(); ++n) {
      const BlockNode& expected = clean.forests[f].nodes[n];
      const BlockNode& got = faulty.forests[f].nodes[n];
      EXPECT_EQ(got.id.path, expected.id.path);
      EXPECT_EQ(got.size, expected.size);
      EXPECT_EQ(got.uncov, expected.uncov);
      EXPECT_EQ(got.parent, expected.parent);
    }
  }
  // Retries can only push the simulated completion later.
  EXPECT_GE(faulty.timing.end, clean.timing.end);
}

TEST(FaultInjectionTest, ProgressiveErSurvivesFaultsWithIdenticalDuplicates) {
  PublicationConfig gen;
  gen.num_entities = 1500;
  gen.seed = 23;
  const LabeledDataset data = GeneratePublications(gen);
  PublicationConfig train_gen;
  train_gen.num_entities = 500;
  train_gen.seed = 24;
  const LabeledDataset train = GeneratePublications(train_gen);

  const BlockingConfig blocking({{"X", kPubTitle, {2, 4}, -1},
                                 {"Y", kPubVenue, {3}, -1}});
  const MatchFunction match(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.7, 0},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.3, 0}},
      0.75);
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);
  const SortedNeighborMechanism sn;

  ProgressiveErOptions options;
  options.cluster = TestCluster();
  options.cluster.machines = 3;
  const ErRunResult clean =
      ProgressiveEr(blocking, match, sn, prob, options).Run(data.dataset);
  ASSERT_FALSE(clean.failed);

  ProgressiveErOptions faulty_options = options;
  faulty_options.cluster.fault.enabled = true;
  faulty_options.cluster.fault.seed = 7;
  faulty_options.cluster.fault.map_failure_prob = 0.25;
  faulty_options.cluster.fault.reduce_failure_prob = 0.25;
  faulty_options.cluster.fault.max_attempts = 10;
  const ErRunResult faulty =
      ProgressiveEr(blocking, match, sn, prob, faulty_options)
          .Run(data.dataset);
  ASSERT_FALSE(faulty.failed) << faulty.error;

  // Values identical: same duplicates, same resolution outcome counts.
  EXPECT_EQ(faulty.duplicates, clean.duplicates);
  EXPECT_EQ(faulty.duplicate_count, clean.duplicate_count);
  EXPECT_EQ(faulty.comparisons, clean.comparisons);
  EXPECT_EQ(faulty.skipped_count, clean.skipped_count);
  EXPECT_EQ(CountersMinusMr(faulty.counters), CountersMinusMr(clean.counters));
  // Timing shifted (never earlier) by the injected retries.
  EXPECT_GE(faulty.total_time, clean.total_time);
  ASSERT_EQ(faulty.events.size(), clean.events.size());
  for (size_t i = 0; i < clean.events.size(); ++i) {
    EXPECT_EQ(faulty.events[i].pair, clean.events[i].pair);
    EXPECT_GE(faulty.events[i].time, clean.events[i].time);
  }

  // Checkpointed recovery under the same fault plan: identical duplicates
  // again, but re-attempts resume from their last alpha-boundary snapshot
  // instead of replaying, so strictly less work is repeated.
  ProgressiveErOptions resumed_options = faulty_options;
  resumed_options.checkpoint_recovery = true;
  const ErRunResult resumed =
      ProgressiveEr(blocking, match, sn, prob, resumed_options)
          .Run(data.dataset);
  ASSERT_FALSE(resumed.failed) << resumed.error;
  EXPECT_EQ(resumed.duplicates, clean.duplicates);
  EXPECT_EQ(resumed.duplicate_count, clean.duplicate_count);
  EXPECT_EQ(resumed.comparisons, clean.comparisons);
  EXPECT_EQ(CountersMinusMr(resumed.counters),
            CountersMinusMr(clean.counters));
  EXPECT_GT(resumed.counters.Get("mr.checkpoint.saved"), 0);
  EXPECT_LE(resumed.counters.Get("mr.recovery.replayed_pairs"),
            faulty.counters.Get("mr.recovery.replayed_pairs"));
  EXPECT_LE(resumed.total_time, faulty.total_time);
}

TEST(FaultInjectionTest, ProgressiveErPropagatesJobFailure) {
  const LabeledDataset toy = GeneratePeopleToy();
  const BlockingConfig blocking({{"X", 0, {2}, -1}});
  const MatchFunction match(
      {{0, AttributeSimilarity::kEditDistance, 1.0, 0}}, 0.75);
  const ProbabilityModel prob;
  const SortedNeighborMechanism sn;

  ProgressiveErOptions options;
  options.cluster = TestCluster();
  options.cluster.fault.enabled = true;
  options.cluster.fault.max_attempts = 2;
  options.cluster.fault.map_failure_prob = 1.0;  // unrecoverable
  const ErRunResult result =
      ProgressiveEr(blocking, match, sn, prob, options).Run(toy.dataset);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.duplicates.empty());
}

}  // namespace
}  // namespace progres

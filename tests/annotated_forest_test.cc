#include <unordered_map>

#include <gtest/gtest.h>

#include "blocking/forest.h"
#include "datagen/generators.h"
#include "estimate/annotated_forest.h"
#include "estimate/prob_model.h"

namespace progres {
namespace {

struct Fixture {
  LabeledDataset data;
  BlockingConfig config{std::vector<FamilySpec>{}};
  std::vector<Forest> forests;
  ProbabilityModel prob;
  EstimateParams params;

  explicit Fixture(int64_t n = 3000, uint64_t seed = 31) {
    PublicationConfig gen;
    gen.num_entities = n;
    gen.seed = seed;
    data = GeneratePublications(gen);
    config = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                             {"Y", kPubAbstract, {3, 5}, -1},
                             {"Z", kPubVenue, {3, 5}, -1}});
    forests = BuildForests(data.dataset, config, /*keep_members=*/false);
    ComputeUncoveredPairs(data.dataset, config, &forests);
    prob = ProbabilityModel::Train(data.dataset, data.truth, config);
  }

  std::vector<AnnotatedForest> Annotate() {
    return AnnotateForests(forests, params, prob, data.dataset.size());
  }
};

TEST(AnnotatedForestTest, SmallBlocksEliminated) {
  Fixture fx;
  for (const AnnotatedForest& forest : fx.Annotate()) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      const AnnotatedBlock& b = forest.block(n);
      if (b.size < 2) {
        EXPECT_TRUE(b.eliminated);
      }
    }
  }
}

TEST(AnnotatedForestTest, EqualSizeChainsCollapse) {
  Fixture fx;
  for (const AnnotatedForest& forest : fx.Annotate()) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      const AnnotatedBlock& b = forest.block(n);
      if (b.eliminated || b.parent < 0) continue;
      const AnnotatedBlock& parent = forest.block(b.parent);
      // Surviving blocks always hang off surviving, strictly larger parents.
      EXPECT_FALSE(parent.eliminated);
      EXPECT_LT(b.size, parent.size);
    }
  }
}

TEST(AnnotatedForestTest, EliminatedParentsRedirectToSurvivor) {
  Fixture fx;
  for (const AnnotatedForest& forest : fx.Annotate()) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      const AnnotatedBlock& b = forest.block(n);
      if (!b.eliminated || b.redirect < 0) continue;
      const AnnotatedBlock& target = forest.block(b.redirect);
      EXPECT_EQ(target.size, b.size);
      const int found = forest.Find(b.id.path);
      ASSERT_GE(found, 0);
      EXPECT_FALSE(forest.block(found).eliminated);
    }
  }
}

TEST(AnnotatedForestTest, EstimatesAreFinite) {
  Fixture fx;
  for (const AnnotatedForest& forest : fx.Annotate()) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      const AnnotatedBlock& b = forest.block(n);
      if (b.eliminated) continue;
      EXPECT_GE(b.dup, 0.0) << b.id.path;
      EXPECT_GE(b.remain, 0.0);
      EXPECT_GE(b.dis, 0.0);
      EXPECT_GT(b.cost, 0.0);
      EXPECT_GE(b.util, 0.0);
      EXPECT_EQ(b.th, b.size);  // Th(X) = |X|
    }
  }
}

TEST(AnnotatedForestTest, PolicyFollowsPosition) {
  Fixture fx;
  for (const AnnotatedForest& forest : fx.Annotate()) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      const AnnotatedBlock& b = forest.block(n);
      if (b.eliminated) continue;
      if (b.tree_root) {
        EXPECT_EQ(b.window, fx.params.window_root);
        EXPECT_DOUBLE_EQ(b.frac, 1.0);
      } else if (b.is_leaf()) {
        EXPECT_EQ(b.window, fx.params.window_leaf);
        EXPECT_DOUBLE_EQ(b.frac, fx.params.frac_leaf);
      }
    }
  }
}

TEST(AnnotatedForestTest, TreeBlocksIsBottomUp) {
  Fixture fx;
  for (const AnnotatedForest& forest : fx.Annotate()) {
    for (int root : forest.tree_roots()) {
      const std::vector<int> order = forest.TreeBlocks(root);
      ASSERT_FALSE(order.empty());
      EXPECT_EQ(order.back(), root);  // root last
      std::unordered_map<int, size_t> position;
      for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
      for (int n : order) {
        const AnnotatedBlock& b = forest.block(n);
        if (n == root) continue;
        ASSERT_TRUE(position.count(b.parent));
        EXPECT_LT(position[n], position[b.parent]);
      }
    }
  }
}

TEST(AnnotatedForestTest, SplitCreatesNewTree) {
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  AnnotatedForest& forest = forests[0];

  // Find a root with an in-tree child.
  int root = -1;
  int child = -1;
  for (int r : forest.tree_roots()) {
    for (int c : forest.block(r).children) {
      if (!forest.block(c).eliminated && !forest.block(c).tree_root) {
        root = r;
        child = c;
        break;
      }
    }
    if (child >= 0) break;
  }
  ASSERT_GE(child, 0);

  const size_t roots_before = forest.tree_roots().size();
  const int64_t root_cov_before = forest.block(root).cov;
  const int64_t child_cov = forest.block(child).cov;
  forest.SplitSubtree(child);

  EXPECT_TRUE(forest.block(child).tree_root);
  EXPECT_EQ(forest.tree_roots().size(), roots_before + 1);
  EXPECT_EQ(forest.block(root).cov,
            std::max<int64_t>(0, root_cov_before - child_cov));
  EXPECT_EQ(forest.FindTreeRoot(child), child);
  // The split child is now resolved fully.
  EXPECT_EQ(forest.block(child).window, fx.params.window_root);
  EXPECT_DOUBLE_EQ(forest.block(child).frac, 1.0);
  // The old tree no longer descends into the split subtree.
  for (int n : forest.TreeBlocks(root)) EXPECT_NE(n, child);
}

TEST(AnnotatedForestTest, SplitIncreasesChildCost) {
  // Resolving fully costs more than resolving partially (the "high reduction
  // in the utility value" the paper warns about).
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  AnnotatedForest& forest = forests[0];
  for (int r : forest.tree_roots()) {
    for (int c : forest.block(r).children) {
      const AnnotatedBlock& cb = forest.block(c);
      if (cb.eliminated || cb.tree_root || cb.size < 50) continue;
      const double cost_before = cb.cost;
      const double util_before = cb.util;
      forest.SplitSubtree(c);
      EXPECT_GT(forest.block(c).cost, cost_before);
      EXPECT_LE(forest.block(c).util, util_before + 1e-9);
      return;
    }
  }
  GTEST_SKIP() << "no sufficiently large child found";
}

TEST(AnnotatedForestTest, SplitIsIdempotent) {
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  AnnotatedForest& forest = forests[0];
  int child = -1;
  for (int r : forest.tree_roots()) {
    for (int c : forest.block(r).children) {
      if (!forest.block(c).eliminated && !forest.block(c).tree_root) {
        child = c;
        break;
      }
    }
    if (child >= 0) break;
  }
  ASSERT_GE(child, 0);
  forest.SplitSubtree(child);
  const size_t roots = forest.tree_roots().size();
  forest.SplitSubtree(child);  // no-op
  EXPECT_EQ(forest.tree_roots().size(), roots);
}

TEST(AnnotatedForestTest, DupOnPairsOptionChangesDValue) {
  Fixture fx;
  fx.params.dup_on_covered = true;
  const std::vector<AnnotatedForest> covered = fx.Annotate();
  fx.params.dup_on_covered = false;
  const std::vector<AnnotatedForest> pairs = fx.Annotate();
  // With d on Pairs(|X|), d_value can only be >= the covered variant
  // (cov <= Pairs).
  bool found_difference = false;
  for (int f = 0; f < static_cast<int>(covered.size()); ++f) {
    for (int n = 0; n < covered[static_cast<size_t>(f)].num_blocks(); ++n) {
      const AnnotatedBlock& a = covered[static_cast<size_t>(f)].block(n);
      const AnnotatedBlock& b = pairs[static_cast<size_t>(f)].block(n);
      if (a.eliminated) continue;
      EXPECT_LE(a.d_value, b.d_value + 1e-9);
      if (a.d_value < b.d_value - 1e-9) found_difference = true;
    }
  }
  EXPECT_TRUE(found_difference);
}

}  // namespace
}  // namespace progres

// Property tests tying the estimation module to what mechanisms actually
// charge: the schedule is only as good as these predictions.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "estimate/cost_model.h"
#include "mechanism/hierarchy_hint.h"
#include "mechanism/psnm.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

std::vector<Entity> RandomBlock(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Entity> entities;
  for (int i = 0; i < n; ++i) {
    Entity e;
    e.id = static_cast<EntityId>(i);
    std::string value;
    for (int c = 0; c < 8; ++c) {
      value.push_back(static_cast<char>('a' + rng.UniformU64(6)));
    }
    e.attributes = {value};
    entities.push_back(std::move(e));
  }
  return entities;
}

struct Charged {
  ResolveOutcome outcome;
  double cost = 0.0;
};

Charged Resolve(const ProgressiveMechanism& mechanism,
                const std::vector<Entity>& entities, ResolveOptions options) {
  static const MatchFunction match(
      {{0, AttributeSimilarity::kEditDistance, 1.0, 0}}, 0.8);
  CostClock clock;
  std::vector<const Entity*> block;
  for (const Entity& e : entities) block.push_back(&e);
  ResolveRequest request;
  request.block = &block;
  request.sort_attribute = 0;
  request.match = &match;
  request.options = options;
  request.clock = &clock;
  Charged charged;
  charged.outcome = mechanism.Resolve(request);
  charged.cost = clock.units();
  return charged;
}

// The accounting identity every mechanism must satisfy: charged cost =
// CostA + comparison * (dup + distinct) + skip * skipped.
class CostIdentityTest
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CostIdentityTest, ChargesMatchOutcome) {
  const auto [n, window, seed] = GetParam();
  const std::vector<Entity> entities =
      RandomBlock(n, static_cast<uint64_t>(seed));
  const MechanismCosts costs;
  const SortedNeighborMechanism sn(costs);
  const PsnmMechanism psnm(costs);
  const HierarchyHintMechanism hint(costs);
  for (const ProgressiveMechanism* mechanism :
       {static_cast<const ProgressiveMechanism*>(&sn),
        static_cast<const ProgressiveMechanism*>(&psnm),
        static_cast<const ProgressiveMechanism*>(&hint)}) {
    const Charged charged =
        Resolve(*mechanism, entities, {.window = window});
    const double expected =
        CostA(n, costs) +
        costs.comparison * static_cast<double>(charged.outcome.duplicates +
                                               charged.outcome.distinct) +
        costs.skip * static_cast<double>(charged.outcome.skipped);
    EXPECT_NEAR(charged.cost, expected, 1e-6)
        << mechanism->name() << " n=" << n << " w=" << window;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CostIdentityTest,
    testing::Values(std::make_tuple(2, 5, 1), std::make_tuple(10, 5, 2),
                    std::make_tuple(50, 15, 3), std::make_tuple(200, 10, 4),
                    std::make_tuple(33, 40, 5)));

// Full resolution of an isolated block (no redundancy, no termination)
// compares exactly WindowPairs(n, w) pairs — the quantity CostF prices.
TEST(CostAgreementTest, FullResolutionComparesWindowPairs) {
  const MechanismCosts costs;
  const SortedNeighborMechanism sn(costs);
  for (int n : {2, 7, 40, 150}) {
    for (int window : {2, 5, 15}) {
      const std::vector<Entity> entities =
          RandomBlock(n, static_cast<uint64_t>(n * 31 + window));
      const Charged charged = Resolve(sn, entities, {.window = window});
      EXPECT_EQ(charged.outcome.duplicates + charged.outcome.distinct,
                WindowPairs(n, window))
          << "n=" << n << " w=" << window;
      const double expected =
          CostA(n, costs) + CostF(n, window, PairsOf(n), costs);
      EXPECT_NEAR(charged.cost, expected, 1e-6);
    }
  }
}

// End-to-end sanity: the schedule generator's total estimated cost must be
// within an order of magnitude of what the resolution job actually charges.
// (The estimates steer prioritization; large systematic bias would break
// bucket balancing.)
TEST(CostAgreementTest, EstimatedTotalTracksActual) {
  PublicationConfig gen;
  gen.num_entities = 3000;
  gen.seed = 120;
  const LabeledDataset data = GeneratePublications(gen);
  PublicationConfig train_gen;
  train_gen.num_entities = 800;
  train_gen.seed = 121;
  const LabeledDataset train = GeneratePublications(train_gen);

  const BlockingConfig blocking({{"X", kPubTitle, {2, 4, 8}, -1},
                                 {"Y", kPubAbstract, {3, 5}, -1},
                                 {"Z", kPubVenue, {3, 5}, -1}});
  const MatchFunction match(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
  const SortedNeighborMechanism sn;
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);
  ProgressiveErOptions options;
  options.cluster.machines = 2;
  options.cluster.execution_threads = 4;
  const ProgressiveEr er(blocking, match, sn, prob, options);

  const ProgressiveEr::Preprocessed pre = er.Preprocess(data.dataset);
  const double estimated = TotalEstimatedCost(pre.forests);

  const ErRunResult result = er.Run(data.dataset);
  double actual = 0.0;
  for (const ResultChunk& chunk : result.chunks) {
    actual = std::max(actual, chunk.cost_end);
  }
  // actual here is the max task cost; scale to a total via task count.
  actual *= static_cast<double>(pre.schedule.num_reduce_tasks);

  ASSERT_GT(estimated, 0.0);
  ASSERT_GT(actual, 0.0);
  const double ratio = estimated / actual;
  EXPECT_GT(ratio, 0.1) << "estimate=" << estimated << " actual~" << actual;
  EXPECT_LT(ratio, 10.0) << "estimate=" << estimated << " actual~" << actual;
}

}  // namespace
}  // namespace progres

#include <gtest/gtest.h>

#include "estimate/cost_model.h"

namespace progres {
namespace {

int64_t BruteWindowPairs(int64_t n, int w) {
  int64_t count = 0;
  for (int64_t d = 1; d <= std::min<int64_t>(w - 1, n - 1); ++d) {
    count += n - d;
  }
  return count;
}

TEST(WindowPairsTest, MatchesBruteForce) {
  for (int64_t n : {0L, 1L, 2L, 3L, 10L, 17L, 100L}) {
    for (int w : {1, 2, 3, 5, 15, 200}) {
      EXPECT_EQ(WindowPairs(n, w), BruteWindowPairs(n, w))
          << "n=" << n << " w=" << w;
    }
  }
}

TEST(WindowPairsTest, LargeWindowEqualsAllPairs) {
  EXPECT_EQ(WindowPairs(10, 100), 45);  // Pairs(10)
}

TEST(WindowPairsTest, TinyBlocks) {
  EXPECT_EQ(WindowPairs(0, 15), 0);
  EXPECT_EQ(WindowPairs(1, 15), 0);
  EXPECT_EQ(WindowPairs(2, 15), 1);
}

TEST(CostATest, GrowsSuperlinearly) {
  const MechanismCosts costs;
  EXPECT_DOUBLE_EQ(CostA(0, costs), 0.0);
  EXPECT_GT(CostA(100, costs), 0.0);
  // n log n growth: doubling n more than doubles cost.
  EXPECT_GT(CostA(200, costs), 2.0 * CostA(100, costs));
}

TEST(CostPTest, LinearInPairs) {
  const MechanismCosts costs;
  EXPECT_DOUBLE_EQ(CostP(3.0, 7.0, costs), 10.0 * costs.comparison);
  EXPECT_DOUBLE_EQ(CostP(0.0, 0.0, costs), 0.0);
}

TEST(CostFTest, CoveredPairsAtComparisonPrice) {
  const MechanismCosts costs;
  // cov >= window pairs: every window pair is a genuine comparison.
  const int64_t pairs = WindowPairs(20, 5);
  EXPECT_DOUBLE_EQ(CostF(20, 5, /*cov=*/1000, costs),
                   costs.comparison * static_cast<double>(pairs));
}

TEST(CostFTest, UncoveredPairsAtSkipPrice) {
  const MechanismCosts costs;
  const int64_t pairs = WindowPairs(20, 5);
  // cov = 0: every window pair is a skip.
  EXPECT_DOUBLE_EQ(CostF(20, 5, /*cov=*/0, costs),
                   costs.skip * static_cast<double>(pairs));
}

TEST(CostFTest, MixedCovSplitsPrices) {
  const MechanismCosts costs;
  const int64_t pairs = WindowPairs(20, 5);
  const int64_t cov = pairs / 2;
  EXPECT_DOUBLE_EQ(CostF(20, 5, cov, costs),
                   costs.comparison * static_cast<double>(cov) +
                       costs.skip * static_cast<double>(pairs - cov));
}

TEST(CostFTest, MonotoneInWindow) {
  const MechanismCosts costs;
  EXPECT_LE(CostF(50, 5, 10000, costs), CostF(50, 10, 10000, costs));
  EXPECT_LE(CostF(50, 10, 10000, costs), CostF(50, 50, 10000, costs));
}

}  // namespace
}  // namespace progres

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "similarity/match_function.h"

namespace progres {
namespace {

Entity MakeEntity(EntityId id, std::vector<std::string> attributes) {
  Entity e;
  e.id = id;
  e.attributes = std::move(attributes);
  return e;
}

TEST(MatchFunctionTest, IdenticalEntitiesMatch) {
  MatchFunction match({{0, AttributeSimilarity::kEditDistance, 1.0, 0}}, 0.9);
  const Entity a = MakeEntity(0, {"progressive resolution"});
  const Entity b = MakeEntity(1, {"progressive resolution"});
  EXPECT_TRUE(match.Resolve(a, b));
  EXPECT_DOUBLE_EQ(match.Similarity(a, b), 1.0);
}

TEST(MatchFunctionTest, DissimilarEntitiesDoNotMatch) {
  MatchFunction match({{0, AttributeSimilarity::kEditDistance, 1.0, 0}}, 0.8);
  EXPECT_FALSE(match.Resolve(MakeEntity(0, {"aaaaaaaa"}),
                             MakeEntity(1, {"zzzzzzzz"})));
}

TEST(MatchFunctionTest, WeightedSumCombinesAttributes) {
  // Attribute 0 identical (weight 3), attribute 1 disjoint (weight 1):
  // similarity = 3/4.
  MatchFunction match({{0, AttributeSimilarity::kExact, 3.0, 0},
                       {1, AttributeSimilarity::kExact, 1.0, 0}},
                      0.7);
  const Entity a = MakeEntity(0, {"same", "xxx"});
  const Entity b = MakeEntity(1, {"same", "yyy"});
  EXPECT_DOUBLE_EQ(match.Similarity(a, b), 0.75);
  EXPECT_TRUE(match.Resolve(a, b));
}

TEST(MatchFunctionTest, ExactComparatorIsBinary) {
  MatchFunction match({{0, AttributeSimilarity::kExact, 1.0, 0}}, 0.5);
  EXPECT_DOUBLE_EQ(
      match.Similarity(MakeEntity(0, {"abcd"}), MakeEntity(1, {"abce"})), 0.0);
}

TEST(MatchFunctionTest, MaxCharsTruncatesComparison) {
  // Strings differ only after the 4th character; with max_chars=4 they are
  // identical (the paper truncates abstracts to 350 chars the same way).
  MatchFunction match({{0, AttributeSimilarity::kEditDistance, 1.0, 4}}, 0.99);
  EXPECT_TRUE(match.Resolve(MakeEntity(0, {"abcdXXXX"}),
                            MakeEntity(1, {"abcdYYYY"})));
}

TEST(MatchFunctionTest, BothMissingValuesCountAsSimilar) {
  MatchFunction match({{0, AttributeSimilarity::kEditDistance, 1.0, 0}}, 0.9);
  EXPECT_TRUE(match.Resolve(MakeEntity(0, {""}), MakeEntity(1, {""})));
}

TEST(MatchFunctionTest, OneMissingValueCountsAsDissimilar) {
  MatchFunction match({{0, AttributeSimilarity::kEditDistance, 1.0, 0}}, 0.5);
  EXPECT_FALSE(match.Resolve(MakeEntity(0, {"value"}), MakeEntity(1, {""})));
}

TEST(MatchFunctionTest, CountsComparisons) {
  MatchFunction match({{0, AttributeSimilarity::kExact, 1.0, 0}}, 0.5);
  const Entity a = MakeEntity(0, {"x"});
  const Entity b = MakeEntity(1, {"x"});
  EXPECT_EQ(match.comparisons(), 0);
  match.Resolve(a, b);
  match.Resolve(a, b);
  EXPECT_EQ(match.comparisons(), 2);
  match.ResetCounter();
  EXPECT_EQ(match.comparisons(), 0);
}

TEST(MatchFunctionTest, SimilarityDoesNotCount) {
  MatchFunction match({{0, AttributeSimilarity::kExact, 1.0, 0}}, 0.5);
  match.Similarity(MakeEntity(0, {"x"}), MakeEntity(1, {"x"}));
  EXPECT_EQ(match.comparisons(), 0);
}

// Sanity on generated data: corrupted duplicates must mostly clear the
// threshold while random non-duplicates must mostly fail it; otherwise the
// figure reproductions cannot reach the paper's recall levels.
TEST(MatchFunctionTest, SeparatesGeneratedDuplicatesFromDistinct) {
  PublicationConfig config;
  config.num_entities = 2000;
  config.seed = 99;
  const LabeledDataset data = GeneratePublications(config);
  MatchFunction match({{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
                       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3,
                        350},
                       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
                      0.75);
  int64_t dup_hits = 0;
  int64_t dup_total = 0;
  for (PairKey pair : data.truth.AllDuplicatePairs()) {
    const auto [a, b] = PairKeyIds(pair);
    ++dup_total;
    if (match.Resolve(data.dataset.entity(a), data.dataset.entity(b))) {
      ++dup_hits;
    }
  }
  ASSERT_GT(dup_total, 100);
  EXPECT_GT(static_cast<double>(dup_hits) / static_cast<double>(dup_total),
            0.9);

  // Random non-duplicate pairs must rarely match.
  Rng rng(5);
  int64_t false_hits = 0;
  int64_t distinct_total = 0;
  while (distinct_total < 2000) {
    const EntityId a =
        static_cast<EntityId>(rng.UniformU64(static_cast<uint64_t>(data.dataset.size())));
    const EntityId b =
        static_cast<EntityId>(rng.UniformU64(static_cast<uint64_t>(data.dataset.size())));
    if (a == b || data.truth.IsDuplicate(a, b)) continue;
    ++distinct_total;
    if (match.Resolve(data.dataset.entity(a), data.dataset.entity(b))) {
      ++false_hits;
    }
  }
  EXPECT_LT(static_cast<double>(false_hits) /
                static_cast<double>(distinct_total),
            0.01);
}

}  // namespace
}  // namespace progres

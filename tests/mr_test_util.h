#ifndef PROGRES_TESTS_MR_TEST_UTIL_H_
#define PROGRES_TESTS_MR_TEST_UTIL_H_

// Shared helpers for the MapReduce runtime tests: a schedule-validity
// checker for attempt schedules (used by the heterogeneous-cluster and
// fault-injection tests) and counter utilities for comparing job results
// modulo the runtime's own "mr." bookkeeping counters.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/cluster.h"
#include "mapreduce/counters.h"

namespace progres {
namespace testing_util {

// Asserts the structural invariants every attempt schedule must satisfy:
//   * every attempt runs within [start_time, inf) and has positive extent;
//   * no two attempts overlap on the same slot;
//   * first attempts are dispatched FIFO (non-decreasing start times in
//     task order);
//   * retries start no earlier than the failed attempt they replace ends;
//   * every task has exactly one winning attempt, and `end_time` is the
//     makespan over winning attempts.
inline void ValidateAttemptSchedule(
    const std::vector<TaskAttemptTiming>& attempts, int num_tasks,
    double start_time, double end_time) {
  // Per-slot interval overlap.
  std::map<int, std::vector<std::pair<double, double>>> by_slot;
  for (const TaskAttemptTiming& a : attempts) {
    EXPECT_GE(a.start, start_time);
    EXPECT_GE(a.end, a.start);
    by_slot[a.slot].emplace_back(a.start, a.end);
  }
  for (auto& [slot, intervals] : by_slot) {
    std::sort(intervals.begin(), intervals.end());
    for (size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second)
          << "slot " << slot << " runs two attempts at once";
    }
  }

  // FIFO dispatch of first attempts. A machine-killed attempt re-runs under
  // the same attempt index, so only the first occurrence of each task's
  // attempt 0 is part of the FIFO dispatch order.
  double previous_start = start_time;
  int previous_task = -1;
  std::set<int> first_seen;
  for (const TaskAttemptTiming& a : attempts) {
    if (a.speculative || a.attempt != 0) continue;
    if (!first_seen.insert(a.task).second) continue;
    EXPECT_GT(a.task, previous_task) << "first attempts out of task order";
    EXPECT_GE(a.start, previous_start) << "FIFO order violated";
    previous_start = a.start;
    previous_task = a.task;
  }

  // Retry chains and the winner-per-task invariant.
  std::map<int, int> winners;
  std::map<std::pair<int, int>, double> attempt_end;
  for (const TaskAttemptTiming& a : attempts) {
    if (a.won) ++winners[a.task];
    if (a.speculative) continue;
    if (a.attempt > 0) {
      const auto it = attempt_end.find({a.task, a.attempt - 1});
      ASSERT_NE(it, attempt_end.end())
          << "retry without a preceding attempt";
      EXPECT_GE(a.start, it->second)
          << "retry started before its predecessor failed";
    }
    attempt_end[{a.task, a.attempt}] = a.end;
  }
  double makespan = start_time;
  int winning_tasks = 0;
  for (const TaskAttemptTiming& a : attempts) {
    if (!a.won) continue;
    ++winning_tasks;
    makespan = std::max(makespan, a.end);
  }
  for (const auto& [task, count] : winners) {
    EXPECT_EQ(count, 1) << "task " << task << " has " << count << " winners";
  }
  EXPECT_LE(winning_tasks, num_tasks);
  EXPECT_DOUBLE_EQ(end_time, makespan);
}

// Copy of `counters` without the runtime's reserved "mr." fault/speculation
// bookkeeping — the part of a faulty run that must match a fault-free one.
inline std::map<std::string, int64_t> CountersMinusMr(
    const Counters& counters) {
  std::map<std::string, int64_t> values;
  for (const auto& [name, value] : counters.values()) {
    if (name.rfind("mr.", 0) == 0) continue;
    values.emplace(name, value);
  }
  return values;
}

}  // namespace testing_util
}  // namespace progres

#endif  // PROGRES_TESTS_MR_TEST_UTIL_H_

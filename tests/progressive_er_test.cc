#include <algorithm>

#include <gtest/gtest.h>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/psnm.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  return cluster;
}

BlockingConfig PublicationBlocking() {
  return BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                         {"Y", kPubAbstract, {3, 5}, -1},
                         {"Z", kPubVenue, {3, 5}, -1}});
}

MatchFunction PublicationMatch() {
  return MatchFunction(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
}

struct Fixture {
  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking = PublicationBlocking();
  MatchFunction match = PublicationMatch();
  SortedNeighborMechanism sn;
  ProbabilityModel prob;

  explicit Fixture(int64_t n = 2500) {
    PublicationConfig train_gen;
    train_gen.num_entities = n / 4;
    train_gen.seed = 90;
    train = GeneratePublications(train_gen);
    PublicationConfig gen;
    gen.num_entities = n;
    gen.seed = 91;
    data = GeneratePublications(gen);
    prob = ProbabilityModel::Train(train.dataset, train.truth, blocking);
  }

  ProgressiveErOptions Options() const {
    ProgressiveErOptions options;
    options.cluster = TestCluster();
    return options;
  }
};

TEST(ProgressiveErTest, ReachesHighFinalRecall) {
  const Fixture fx;
  const ProgressiveEr er(fx.blocking, fx.match, fx.sn, fx.prob, fx.Options());
  const ErRunResult result = er.Run(fx.data.dataset);
  const RecallCurve curve =
      RecallCurve::FromEvents(result.events, fx.data.truth);
  // Root blocks are resolved fully, so recall approaches the match
  // function's ceiling (paper: 0.99 on CiteSeerX).
  EXPECT_GT(curve.final_recall(), 0.85);
}

TEST(ProgressiveErTest, EventsAreTimedWithinRun) {
  const Fixture fx;
  const ProgressiveEr er(fx.blocking, fx.match, fx.sn, fx.prob, fx.Options());
  const ErRunResult result = er.Run(fx.data.dataset);
  EXPECT_GT(result.preprocessing_end, 0.0);
  for (const DuplicateEvent& event : result.events) {
    EXPECT_GE(event.time, result.preprocessing_end);
    EXPECT_LE(event.time, result.total_time + 1e-9);
  }
}

TEST(ProgressiveErTest, Deterministic) {
  const Fixture fx(1500);
  const ProgressiveEr er(fx.blocking, fx.match, fx.sn, fx.prob, fx.Options());
  const ErRunResult a = er.Run(fx.data.dataset);
  const ErRunResult b = er.Run(fx.data.dataset);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.comparisons, b.comparisons);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].pair, b.events[i].pair);
    EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time);
  }
}

TEST(ProgressiveErTest, RedundancyEliminationSavesComparisons) {
  const Fixture fx;
  ProgressiveErOptions with = fx.Options();
  with.redundancy_elimination = true;
  ProgressiveErOptions without = fx.Options();
  without.redundancy_elimination = false;
  const ErRunResult on =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, with)
          .Run(fx.data.dataset);
  const ErRunResult off =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, without)
          .Run(fx.data.dataset);
  EXPECT_LT(on.comparisons, off.comparisons);
  // Responsibility assignment ignores window reach, so a shared pair can be
  // skipped everywhere except a tree whose sort order never brings it within
  // the window. The recall cost of eliminating redundancy must stay small
  // relative to the comparisons saved.
  const RecallCurve curve_on = RecallCurve::FromEvents(on.events, fx.data.truth);
  const RecallCurve curve_off =
      RecallCurve::FromEvents(off.events, fx.data.truth);
  EXPECT_LE(curve_on.final_recall(), curve_off.final_recall() + 1e-9);
  EXPECT_GT(curve_on.final_recall(), curve_off.final_recall() - 0.08);
}

TEST(ProgressiveErTest, PreprocessExposesScheduleAndForests) {
  const Fixture fx(1200);
  const ProgressiveEr er(fx.blocking, fx.match, fx.sn, fx.prob, fx.Options());
  const ProgressiveEr::Preprocessed pre = er.Preprocess(fx.data.dataset);
  EXPECT_EQ(pre.forests.size(), 3u);
  EXPECT_GT(pre.end_time, 0.0);
  EXPECT_EQ(pre.schedule.num_reduce_tasks, TestCluster().reduce_slots());
  size_t scheduled = 0;
  for (const auto& blocks : pre.schedule.task_blocks) scheduled += blocks.size();
  EXPECT_GT(scheduled, 0u);
}

TEST(ProgressiveErTest, WorksWithPsnm) {
  const Fixture fx(1500);
  const PsnmMechanism psnm;
  const ProgressiveEr er(fx.blocking, fx.match, psnm, fx.prob, fx.Options());
  const ErRunResult result = er.Run(fx.data.dataset);
  const RecallCurve curve =
      RecallCurve::FromEvents(result.events, fx.data.truth);
  EXPECT_GT(curve.final_recall(), 0.8);
}

TEST(ProgressiveErTest, SchedulerVariantsRun) {
  const Fixture fx(1500);
  for (TreeScheduler scheduler :
       {TreeScheduler::kOurs, TreeScheduler::kNoSplit, TreeScheduler::kLpt}) {
    ProgressiveErOptions options = fx.Options();
    options.scheduler = scheduler;
    const ErRunResult result =
        ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, options)
            .Run(fx.data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, fx.data.truth);
    EXPECT_GT(curve.final_recall(), 0.8)
        << "scheduler " << static_cast<int>(scheduler);
  }
}

TEST(ProgressiveErTest, MoreMachinesFinishSooner) {
  const Fixture fx(3000);
  ProgressiveErOptions small = fx.Options();
  small.cluster.machines = 2;
  ProgressiveErOptions large = fx.Options();
  large.cluster.machines = 8;
  const ErRunResult slow =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, small)
          .Run(fx.data.dataset);
  const ErRunResult fast =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, large)
          .Run(fx.data.dataset);
  EXPECT_LT(fast.total_time, slow.total_time);
}

TEST(ProgressiveErTest, AlphaControlsChunkCount) {
  const Fixture fx(1500);
  ProgressiveErOptions fine = fx.Options();
  fine.alpha = 200.0;
  ProgressiveErOptions coarse = fx.Options();
  coarse.alpha = 1e9;
  const ErRunResult fine_run =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, fine)
          .Run(fx.data.dataset);
  const ErRunResult coarse_run =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, coarse)
          .Run(fx.data.dataset);
  EXPECT_GT(fine_run.chunks.size(), coarse_run.chunks.size());
  // With a huge alpha there is exactly one chunk per reduce task.
  EXPECT_EQ(coarse_run.chunks.size(),
            static_cast<size_t>(TestCluster().reduce_slots()));
}

}  // namespace
}  // namespace progres

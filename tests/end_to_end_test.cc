#include <gtest/gtest.h>

#include "core/basic_er.h"
#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/sorted_neighbor.h"
#include "model/union_find.h"

namespace progres {
namespace {

// End-to-end checks of the paper's headline claims at test scale: the
// progressive approach finds duplicates at a higher rate than Basic, and
// more machines yield recall speedup.

ClusterConfig Cluster(int machines) {
  ClusterConfig cluster;
  cluster.machines = machines;
  cluster.execution_threads = 4;
  return cluster;
}

struct Fixture {
  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.8};
  SortedNeighborMechanism sn;
  ProbabilityModel prob;

  explicit Fixture(int64_t n = 4000) {
    PublicationConfig train_gen;
    train_gen.num_entities = n / 4;
    train_gen.seed = 100;
    train = GeneratePublications(train_gen);
    PublicationConfig gen;
    gen.num_entities = n;
    gen.seed = 101;
    data = GeneratePublications(gen);
    blocking = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                               {"Y", kPubAbstract, {3, 5}, -1},
                               {"Z", kPubVenue, {3, 5}, -1}});
    match = MatchFunction(
        {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
         {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
         {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
        0.75);
    prob = ProbabilityModel::Train(train.dataset, train.truth, blocking);
  }
};

TEST(EndToEndTest, ProgressiveBeatsBasicOnQuality) {
  const Fixture fx;
  const ClusterConfig cluster = Cluster(3);

  ProgressiveErOptions options;
  options.cluster = cluster;
  const ErRunResult ours =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, options)
          .Run(fx.data.dataset);

  // Basic with the main blocking functions only, resolved fully.
  const BlockingConfig basic_blocking({{"X", kPubTitle, {2}, -1},
                                       {"Y", kPubAbstract, {3}, -1},
                                       {"Z", kPubVenue, {3}, -1}});
  BasicErOptions basic_options;
  basic_options.cluster = cluster;
  const ErRunResult basic =
      BasicEr(basic_blocking, fx.match, fx.sn, basic_options)
          .Run(fx.data.dataset);

  const RecallCurve ours_curve =
      RecallCurve::FromEvents(ours.events, fx.data.truth);
  const RecallCurve basic_curve =
      RecallCurve::FromEvents(basic.events, fx.data.truth);

  // Compare quality (Eq. 1) over a shared horizon: the progressive approach
  // must accumulate recall faster.
  const double horizon = std::max(ours.total_time, basic.total_time);
  std::vector<double> times;
  std::vector<double> weights;
  for (int i = 1; i <= 10; ++i) {
    times.push_back(horizon * i / 10.0);
    weights.push_back(1.0 - (i - 1) * 0.1);
  }
  const double q_ours = Quality(ours_curve, times, weights);
  const double q_basic = Quality(basic_curve, times, weights);
  EXPECT_GT(q_ours, q_basic);

  // And the final recall is at least as good.
  EXPECT_GE(ours_curve.final_recall() + 0.02, basic_curve.final_recall());
}

TEST(EndToEndTest, RecallSpeedupWithMoreMachines) {
  const Fixture fx(5000);
  ProgressiveErOptions small;
  small.cluster = Cluster(2);
  ProgressiveErOptions large;
  large.cluster = Cluster(8);

  const ErRunResult on2 =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, small)
          .Run(fx.data.dataset);
  const ErRunResult on8 =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, large)
          .Run(fx.data.dataset);

  const RecallCurve curve2 = RecallCurve::FromEvents(on2.events, fx.data.truth);
  const RecallCurve curve8 = RecallCurve::FromEvents(on8.events, fx.data.truth);
  ASSERT_GT(curve2.final_recall(), 0.7);
  ASSERT_GT(curve8.final_recall(), 0.7);
  // Speedup at recall 0.7: 8 machines reach it faster than 2.
  const double t2 = curve2.TimeToRecall(0.7);
  const double t8 = curve8.TimeToRecall(0.7);
  EXPECT_LT(t8, t2);
}

TEST(EndToEndTest, TransitiveClosureClustersDuplicates) {
  const Fixture fx(2000);
  ProgressiveErOptions options;
  options.cluster = Cluster(3);
  const ErRunResult result =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, options)
          .Run(fx.data.dataset);

  UnionFind clusters(fx.data.dataset.size());
  for (PairKey pair : result.duplicates) {
    const auto [a, b] = PairKeyIds(pair);
    clusters.Union(a, b);
  }
  // Clustered entities of the same ground-truth object end up connected for
  // the overwhelming majority of true pairs (transitive closure can only
  // add connectivity).
  int64_t connected = 0;
  int64_t total = 0;
  for (PairKey pair : fx.data.truth.AllDuplicatePairs()) {
    const auto [a, b] = PairKeyIds(pair);
    ++total;
    if (clusters.Connected(a, b)) ++connected;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(connected) / static_cast<double>(total), 0.85);
}

}  // namespace
}  // namespace progres

#include <gtest/gtest.h>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "mr_test_util.h"

namespace progres {
namespace {

using testing_util::ValidateAttemptSchedule;

// Wraps single-attempt per-task costs for ScheduleTaskAttempts.
std::vector<std::vector<double>> SingleAttempts(
    const std::vector<double>& costs) {
  std::vector<std::vector<double>> chains;
  chains.reserve(costs.size());
  for (double c : costs) chains.push_back({c});
  return chains;
}

TEST(SlotSpeedsTest, ExpandsPerMachine) {
  ClusterConfig cluster;
  cluster.machines = 3;
  cluster.machine_speed = {1.0, 0.5, 2.0};
  const std::vector<double> speeds = cluster.SlotSpeeds(2);
  ASSERT_EQ(speeds.size(), 6u);
  EXPECT_DOUBLE_EQ(speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(speeds[1], 1.0);
  EXPECT_DOUBLE_EQ(speeds[2], 0.5);
  EXPECT_DOUBLE_EQ(speeds[3], 0.5);
  EXPECT_DOUBLE_EQ(speeds[4], 2.0);
  EXPECT_DOUBLE_EQ(speeds[5], 2.0);
}

TEST(SlotSpeedsTest, MissingEntriesDefaultToNominal) {
  ClusterConfig cluster;
  cluster.machines = 3;
  cluster.machine_speed = {0.5};  // machines 1 and 2 unspecified
  EXPECT_DOUBLE_EQ(cluster.SpeedOfMachine(0), 0.5);
  EXPECT_DOUBLE_EQ(cluster.SpeedOfMachine(1), 1.0);
  EXPECT_DOUBLE_EQ(cluster.SpeedOfMachine(2), 1.0);
  // Zero/negative speeds are a config error now, caught by validation
  // instead of being silently coerced to nominal.
  cluster.machine_speed = {0.0};
  const std::string error = ValidateClusterConfig(cluster);
  EXPECT_NE(error.find("machine_speed"), std::string::npos) << error;
}

TEST(ValidateClusterConfigTest, AcceptsDefaultsAndRejectsBadFields) {
  ClusterConfig cluster;
  EXPECT_EQ(ValidateClusterConfig(cluster), "");

  cluster.machines = 0;
  EXPECT_NE(ValidateClusterConfig(cluster).find("machines"),
            std::string::npos);
  cluster = ClusterConfig();
  cluster.map_slots_per_machine = 0;
  EXPECT_NE(ValidateClusterConfig(cluster).find("map_slots_per_machine"),
            std::string::npos);
  cluster = ClusterConfig();
  cluster.seconds_per_cost_unit = 0.0;
  EXPECT_NE(ValidateClusterConfig(cluster).find("seconds_per_cost_unit"),
            std::string::npos);
  cluster = ClusterConfig();
  cluster.machine_speed = {1.0, -2.0};
  EXPECT_NE(ValidateClusterConfig(cluster).find("machine_speed"),
            std::string::npos);
}

TEST(ValidateClusterConfigTest, ChecksFaultFieldsOnlyWhenEnabled) {
  ClusterConfig cluster;
  // Garbage fault fields are ignored while fault injection is disabled.
  cluster.fault.max_attempts = 0;
  cluster.fault.map_failure_prob = 7.0;
  EXPECT_EQ(ValidateClusterConfig(cluster), "");

  cluster.fault.enabled = true;
  EXPECT_NE(ValidateClusterConfig(cluster).find("max_attempts"),
            std::string::npos);
  cluster.fault.max_attempts = 3;
  EXPECT_NE(ValidateClusterConfig(cluster).find("map_failure_prob"),
            std::string::npos);
  cluster.fault.map_failure_prob = 0.1;
  EXPECT_EQ(ValidateClusterConfig(cluster), "");

  cluster.fault.machine_failures.push_back(
      {cluster.machines, 0.0});  // machine out of range
  EXPECT_NE(ValidateClusterConfig(cluster).find("machine_failures"),
            std::string::npos);
  cluster.fault.machine_failures.clear();
  cluster.fault.retry_backoff_factor = 0.5;
  EXPECT_NE(ValidateClusterConfig(cluster).find("retry_backoff_factor"),
            std::string::npos);
  cluster.fault.retry_backoff_factor = 2.0;
  cluster.fault.blacklist_failures = -1;
  EXPECT_NE(ValidateClusterConfig(cluster).find("blacklist_failures"),
            std::string::npos);
}

TEST(ValidateClusterConfigTest, ThreadedBackendRequiresValidThreadCount) {
  ClusterConfig cluster;
  cluster.backend = ExecutionBackend::kThreaded;
  // 0 (the simulated default) is not a legal worker count.
  cluster.execution_threads = 0;
  EXPECT_NE(ValidateClusterConfig(cluster)
                .find("backend=threaded requires execution_threads >= 1"),
            std::string::npos);
  // More workers than simulated slots would give the wall clock
  // concurrency the modeled cluster does not have. Default cluster:
  // 10 machines x 2 slots = 20-slot capacity.
  cluster.execution_threads = 21;
  EXPECT_NE(
      ValidateClusterConfig(cluster).find("must not exceed the cluster's"),
      std::string::npos);
  cluster.execution_threads = 20;
  EXPECT_EQ(ValidateClusterConfig(cluster), "");
  cluster.execution_threads = 1;
  EXPECT_EQ(ValidateClusterConfig(cluster), "");
}

TEST(ValidateClusterConfigTest, ThreadedBackendRejectsSpeculation) {
  ClusterConfig cluster;
  cluster.backend = ExecutionBackend::kThreaded;
  cluster.execution_threads = 4;
  cluster.speculation.enabled = true;
  EXPECT_NE(ValidateClusterConfig(cluster)
                .find("does not support speculative execution"),
            std::string::npos);
  // The simulated backend keeps accepting the same config.
  cluster.backend = ExecutionBackend::kSimulated;
  EXPECT_EQ(ValidateClusterConfig(cluster), "");
}

TEST(ValidateClusterConfigTest, ThreadedBackendRejectsMachineFailures) {
  ClusterConfig cluster;
  cluster.backend = ExecutionBackend::kThreaded;
  cluster.execution_threads = 4;
  cluster.fault.enabled = true;
  cluster.fault.machine_failure_prob = 0.05;
  cluster.fault.machine_failure_horizon_seconds = 100.0;
  EXPECT_NE(
      ValidateClusterConfig(cluster).find("does not support machine failures"),
      std::string::npos);
  cluster.fault.machine_failure_prob = 0.0;
  cluster.fault.machine_failures.push_back({0, 5.0});
  EXPECT_NE(
      ValidateClusterConfig(cluster).find("does not support machine failures"),
      std::string::npos);
  // Task-level faults remain fair game for the threaded backend...
  cluster.fault.machine_failures.clear();
  cluster.fault.map_failure_prob = 0.2;
  EXPECT_EQ(ValidateClusterConfig(cluster), "");
  // ...and the simulated backend still takes the machine fault domain.
  cluster.backend = ExecutionBackend::kSimulated;
  cluster.fault.machine_failure_prob = 0.05;
  cluster.fault.machine_failures.push_back({0, 5.0});
  EXPECT_EQ(ValidateClusterConfig(cluster), "");
}

TEST(ValidateClusterConfigTest, ThreadedMisconfigFailsJobSubmission) {
  using Job = MapReduceJob<int, int, int>;
  ClusterConfig cluster;
  cluster.backend = ExecutionBackend::kThreaded;
  cluster.execution_threads = 0;
  Job job(2, 2);
  const auto result = job.Run(
      {1, 2, 3},
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, 1); },
      [](const int&, std::vector<int>*, Job::ReduceContext*) {}, cluster);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find("invalid cluster config"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("backend=threaded"), std::string::npos)
      << result.error;
  EXPECT_TRUE(result.outputs.empty());
  // No phase ran: the elapsed wall time must not be booked to reduce.
  EXPECT_EQ(result.timing.wall.map_seconds, 0.0);
  EXPECT_EQ(result.timing.wall.reduce_seconds, 0.0);
}

TEST(ValidateClusterConfigTest, InvalidConfigFailsJobSubmission) {
  using Job = MapReduceJob<int, int, int>;
  ClusterConfig cluster;
  cluster.machines = -2;
  Job job(2, 2);
  const auto result = job.Run(
      {1, 2, 3},
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, 1); },
      [](const int&, std::vector<int>*, Job::ReduceContext*) {}, cluster);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find("invalid cluster config"), std::string::npos)
      << result.error;
  EXPECT_TRUE(result.outputs.empty());
  // No phase ran: the elapsed wall time must not be booked to reduce.
  EXPECT_EQ(result.timing.wall.map_seconds, 0.0);
  EXPECT_EQ(result.timing.wall.reduce_seconds, 0.0);
}

TEST(ScheduleHeterogeneousTest, SlowSlotStretchesTask) {
  double end = 0.0;
  // One slot at half speed: a 10-unit task takes 20 seconds.
  const std::vector<double> starts =
      ScheduleTasksHeterogeneous({10.0}, {0.5}, 0.0, 1.0, &end);
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(end, 20.0);
}

TEST(ScheduleHeterogeneousTest, MatchesHomogeneousAtNominalSpeed) {
  const std::vector<double> costs = {5.0, 9.0, 2.0, 7.0, 1.0};
  double end_a = 0.0;
  double end_b = 0.0;
  const std::vector<double> a =
      ScheduleTasks(costs, 2, 3.0, 0.5, &end_a);
  const std::vector<double> b =
      ScheduleTasksHeterogeneous(costs, {1.0, 1.0}, 3.0, 0.5, &end_b);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(end_a, end_b);
}

TEST(ScheduleHeterogeneousTest, FastSlotTakesMoreTasks) {
  // Slot 1 runs 4x faster; with many equal tasks it should absorb most of
  // them, keeping the makespan well under the homogeneous value.
  std::vector<double> costs(20, 10.0);
  double slow_end = 0.0;
  ScheduleTasksHeterogeneous(costs, {1.0, 1.0}, 0.0, 1.0, &slow_end);
  double fast_end = 0.0;
  ScheduleTasksHeterogeneous(costs, {1.0, 4.0}, 0.0, 1.0, &fast_end);
  EXPECT_LT(fast_end, slow_end);
}

TEST(ScheduleHeterogeneousTest, AttemptScheduleIsValid) {
  const std::vector<double> costs = {5.0, 9.0, 2.0, 7.0, 1.0, 4.0};
  const std::vector<double> speeds = {1.0, 0.5, 2.0};
  double end = 0.0;
  std::vector<double> starts;
  const std::vector<TaskAttemptTiming> attempts = ScheduleTaskAttempts(
      SingleAttempts(costs), speeds, 2.0, 0.5, SpeculationConfig{}, &end,
      &starts);
  ASSERT_EQ(attempts.size(), costs.size());
  ValidateAttemptSchedule(attempts, static_cast<int>(costs.size()), 2.0, end);
  for (size_t t = 0; t < costs.size(); ++t) {
    EXPECT_DOUBLE_EQ(starts[t], attempts[t].start);
  }
}

TEST(SpeculationTest, BackupBeatsStraggler) {
  // Slot 1 is a 4x straggler. Without speculation the task assigned to it
  // runs 0→40 and dominates the makespan; with speculation the fast slot
  // frees at t=10, launches a backup finishing at t=20, and wins.
  const std::vector<double> costs = {10.0, 10.0};
  const std::vector<double> speeds = {1.0, 0.25};
  double plain_end = 0.0;
  const std::vector<TaskAttemptTiming> plain = ScheduleTaskAttempts(
      SingleAttempts(costs), speeds, 0.0, 1.0, SpeculationConfig{},
      &plain_end, nullptr);
  ValidateAttemptSchedule(plain, static_cast<int>(costs.size()), 0.0,
                          plain_end);

  SpeculationConfig speculation;
  speculation.enabled = true;
  double spec_end = 0.0;
  const std::vector<TaskAttemptTiming> spec = ScheduleTaskAttempts(
      SingleAttempts(costs), speeds, 0.0, 1.0, speculation, &spec_end,
      nullptr);
  ValidateAttemptSchedule(spec, static_cast<int>(costs.size()), 0.0,
                          spec_end);

  EXPECT_LT(spec_end, plain_end);  // strictly smaller makespan
  int backups = 0;
  int backup_wins = 0;
  for (const TaskAttemptTiming& a : spec) {
    if (!a.speculative) continue;
    ++backups;
    if (a.won) ++backup_wins;
  }
  EXPECT_GE(backups, 1);
  EXPECT_EQ(backups, backup_wins);  // only profitable backups are launched
}

TEST(SpeculationTest, HomogeneousClusterIsNoOp) {
  // On equal-speed slots a backup can never finish before the original, so
  // speculation must not change the schedule at all.
  const std::vector<double> costs = {5.0, 9.0, 2.0, 7.0, 1.0, 4.0, 8.0};
  const std::vector<double> speeds = {1.0, 1.0, 1.0};
  SpeculationConfig speculation;
  speculation.enabled = true;
  double plain_end = 0.0;
  double spec_end = 0.0;
  const std::vector<TaskAttemptTiming> plain = ScheduleTaskAttempts(
      SingleAttempts(costs), speeds, 0.0, 1.0, SpeculationConfig{},
      &plain_end, nullptr);
  const std::vector<TaskAttemptTiming> spec = ScheduleTaskAttempts(
      SingleAttempts(costs), speeds, 0.0, 1.0, speculation, &spec_end,
      nullptr);
  EXPECT_DOUBLE_EQ(spec_end, plain_end);
  ASSERT_EQ(spec.size(), plain.size());
  for (size_t i = 0; i < spec.size(); ++i) {
    EXPECT_FALSE(spec[i].speculative);
    EXPECT_DOUBLE_EQ(spec[i].start, plain[i].start);
    EXPECT_DOUBLE_EQ(spec[i].end, plain[i].end);
  }
}

TEST(SpeculationTest, ThresholdSuppressesShortBackups) {
  // The straggler task has 40 simulated seconds remaining when the fast
  // slot frees up; a threshold above that suppresses the backup.
  const std::vector<double> costs = {10.0, 10.0};
  const std::vector<double> speeds = {1.0, 0.25};
  SpeculationConfig speculation;
  speculation.enabled = true;
  speculation.min_remaining_seconds = 1e6;
  double end = 0.0;
  const std::vector<TaskAttemptTiming> attempts = ScheduleTaskAttempts(
      SingleAttempts(costs), speeds, 0.0, 1.0, speculation, &end, nullptr);
  for (const TaskAttemptTiming& a : attempts) {
    EXPECT_FALSE(a.speculative);
  }
}

TEST(HeterogeneousJobTest, StragglerMachineDelaysJob) {
  using Job = MapReduceJob<int, int, int>;
  std::vector<int> input;
  for (int i = 0; i < 100; ++i) input.push_back(i);
  const auto run = [&input](std::vector<double> speeds) {
    ClusterConfig cluster;
    cluster.machines = 2;  // 4 reduce slots: tasks land on both machines
    cluster.execution_threads = 4;
    cluster.seconds_per_cost_unit = 1.0;
    cluster.machine_speed = std::move(speeds);
    Job job(4, 4);
    const auto result = job.Run(
        input,
        [](const int& record, Job::MapContext* ctx) {
          ctx->Emit(record % 4, record);
        },
        [](const int&, std::vector<int>*, Job::ReduceContext* ctx) {
          ctx->clock().Charge(100.0);
        },
        cluster);
    return result.timing.end;
  };
  const double nominal = run({});
  const double straggler = run({1.0, 0.25});
  EXPECT_GT(straggler, nominal);
}

TEST(HeterogeneousJobTest, SpeculationRecoversStragglerTime) {
  using Job = MapReduceJob<int, int, int>;
  std::vector<int> input;
  for (int i = 0; i < 100; ++i) input.push_back(i);
  const auto run = [&input](bool speculate) {
    ClusterConfig cluster;
    cluster.machines = 2;
    cluster.execution_threads = 4;
    cluster.seconds_per_cost_unit = 1.0;
    cluster.machine_speed = {1.0, 0.25};
    cluster.speculation.enabled = speculate;
    Job job(4, 4);
    return job.Run(
        input,
        [](const int& record, Job::MapContext* ctx) {
          ctx->Emit(record % 4, record);
        },
        [](const int&, std::vector<int>*, Job::ReduceContext* ctx) {
          ctx->clock().Charge(100.0);
        },
        cluster);
  };
  const auto plain = run(false);
  const auto spec = run(true);
  // The timing model improves; the data plane is untouched.
  EXPECT_LT(spec.timing.end, plain.timing.end);
  EXPECT_EQ(spec.outputs, plain.outputs);
  EXPECT_GE(spec.counters.Get("mr.speculative_wins"), 1);
  EXPECT_EQ(spec.counters.Get("mr.speculative_wins"),
            spec.counters.Get("mr.speculative_launched"));
  EXPECT_EQ(plain.counters.Get("mr.speculative_wins"), 0);
  testing_util::ValidateAttemptSchedule(spec.timing.reduce_attempts, 4,
                                        spec.timing.map_end, spec.timing.end);
}

}  // namespace
}  // namespace progres

#include <gtest/gtest.h>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace progres {
namespace {

TEST(SlotSpeedsTest, ExpandsPerMachine) {
  ClusterConfig cluster;
  cluster.machines = 3;
  cluster.machine_speed = {1.0, 0.5, 2.0};
  const std::vector<double> speeds = cluster.SlotSpeeds(2);
  ASSERT_EQ(speeds.size(), 6u);
  EXPECT_DOUBLE_EQ(speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(speeds[1], 1.0);
  EXPECT_DOUBLE_EQ(speeds[2], 0.5);
  EXPECT_DOUBLE_EQ(speeds[3], 0.5);
  EXPECT_DOUBLE_EQ(speeds[4], 2.0);
  EXPECT_DOUBLE_EQ(speeds[5], 2.0);
}

TEST(SlotSpeedsTest, MissingEntriesDefaultToNominal) {
  ClusterConfig cluster;
  cluster.machines = 3;
  cluster.machine_speed = {0.5};  // machines 1 and 2 unspecified
  EXPECT_DOUBLE_EQ(cluster.SpeedOfMachine(0), 0.5);
  EXPECT_DOUBLE_EQ(cluster.SpeedOfMachine(1), 1.0);
  EXPECT_DOUBLE_EQ(cluster.SpeedOfMachine(2), 1.0);
  // Zero/negative speeds are treated as nominal, never divide-by-zero.
  cluster.machine_speed = {0.0};
  EXPECT_DOUBLE_EQ(cluster.SpeedOfMachine(0), 1.0);
}

TEST(ScheduleHeterogeneousTest, SlowSlotStretchesTask) {
  double end = 0.0;
  // One slot at half speed: a 10-unit task takes 20 seconds.
  const std::vector<double> starts =
      ScheduleTasksHeterogeneous({10.0}, {0.5}, 0.0, 1.0, &end);
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(end, 20.0);
}

TEST(ScheduleHeterogeneousTest, MatchesHomogeneousAtNominalSpeed) {
  const std::vector<double> costs = {5.0, 9.0, 2.0, 7.0, 1.0};
  double end_a = 0.0;
  double end_b = 0.0;
  const std::vector<double> a =
      ScheduleTasks(costs, 2, 3.0, 0.5, &end_a);
  const std::vector<double> b =
      ScheduleTasksHeterogeneous(costs, {1.0, 1.0}, 3.0, 0.5, &end_b);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(end_a, end_b);
}

TEST(ScheduleHeterogeneousTest, FastSlotTakesMoreTasks) {
  // Slot 1 runs 4x faster; with many equal tasks it should absorb most of
  // them, keeping the makespan well under the homogeneous value.
  std::vector<double> costs(20, 10.0);
  double slow_end = 0.0;
  ScheduleTasksHeterogeneous(costs, {1.0, 1.0}, 0.0, 1.0, &slow_end);
  double fast_end = 0.0;
  ScheduleTasksHeterogeneous(costs, {1.0, 4.0}, 0.0, 1.0, &fast_end);
  EXPECT_LT(fast_end, slow_end);
}

TEST(HeterogeneousJobTest, StragglerMachineDelaysJob) {
  using Job = MapReduceJob<int, int, int>;
  std::vector<int> input;
  for (int i = 0; i < 100; ++i) input.push_back(i);
  const auto run = [&input](std::vector<double> speeds) {
    ClusterConfig cluster;
    cluster.machines = 2;  // 4 reduce slots: tasks land on both machines
    cluster.execution_threads = 4;
    cluster.seconds_per_cost_unit = 1.0;
    cluster.machine_speed = std::move(speeds);
    Job job(4, 4);
    const auto result = job.Run(
        input,
        [](const int& record, Job::MapContext* ctx) {
          ctx->Emit(record % 4, record);
        },
        [](const int&, std::vector<int>*, Job::ReduceContext* ctx) {
          ctx->clock().Charge(100.0);
        },
        cluster);
    return result.timing.end;
  };
  const double nominal = run({});
  const double straggler = run({1.0, 0.25});
  EXPECT_GT(straggler, nominal);
}

}  // namespace
}  // namespace progres

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "blocking/forest_io.h"
#include "common/tsv.h"
#include "datagen/generators.h"

namespace progres {
namespace {

TEST(ForestIoTest, RoundTripPreservesStructure) {
  PublicationConfig gen;
  gen.num_entities = 1500;
  gen.seed = 130;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config({{"X", kPubTitle, {2, 4, 8}, -1},
                               {"Y", kPubAbstract, {3, 5}, -1},
                               {"Z", kPubVenue, {3}, -1}});
  std::vector<Forest> original =
      BuildForests(data.dataset, config, /*keep_members=*/false);
  ComputeUncoveredPairs(data.dataset, config, &original);

  const std::string path = testing::TempDir() + "/progres_forests.tsv";
  ASSERT_TRUE(SaveForests(path, original));

  std::vector<Forest> loaded;
  ASSERT_TRUE(LoadForests(path, &loaded));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t f = 0; f < original.size(); ++f) {
    const Forest& a = original[f];
    const Forest& b = loaded[f];
    ASSERT_EQ(b.nodes.size(), a.nodes.size()) << "family " << f;
    ASSERT_EQ(b.roots.size(), a.roots.size());
    for (const BlockNode& node : a.nodes) {
      const int found = b.Find(node.id.path);
      ASSERT_GE(found, 0) << node.id.path;
      const BlockNode& got = b.node(found);
      EXPECT_EQ(got.size, node.size);
      EXPECT_EQ(got.uncov, node.uncov);
      EXPECT_EQ(got.id.level, node.id.level);
      EXPECT_EQ(got.children.size(), node.children.size());
      if (node.parent >= 0) {
        ASSERT_GE(got.parent, 0);
        EXPECT_EQ(b.node(got.parent).id.path, a.node(node.parent).id.path);
      } else {
        EXPECT_LT(got.parent, 0);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ForestIoTest, EmptyForests) {
  const std::string path = testing::TempDir() + "/progres_forests_empty.tsv";
  ASSERT_TRUE(SaveForests(path, {}));
  std::vector<Forest> loaded;
  ASSERT_TRUE(LoadForests(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(ForestIoTest, MissingFileFails) {
  std::vector<Forest> loaded;
  EXPECT_FALSE(LoadForests("/nonexistent/progres_forests.tsv", &loaded));
}

TEST(ForestIoTest, MalformedRowFails) {
  const std::string path = testing::TempDir() + "/progres_forests_bad.tsv";
  ASSERT_TRUE(WriteTsv(path, {{"0", "1", "path"}}));  // too few fields
  std::vector<Forest> loaded;
  EXPECT_FALSE(LoadForests(path, &loaded));
  std::remove(path.c_str());
}

TEST(ForestIoTest, OrphanedChildFails) {
  const std::string path = testing::TempDir() + "/progres_forests_orphan.tsv";
  // Level-2 block whose parent path does not exist.
  ASSERT_TRUE(WriteTsv(path, {{"0", "2", "ab\x1f" "abcd", "zz", "3", "0"}}));
  std::vector<Forest> loaded;
  EXPECT_FALSE(LoadForests(path, &loaded));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace progres

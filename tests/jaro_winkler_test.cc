#include <gtest/gtest.h>

#include "similarity/jaro_winkler.h"
#include "similarity/match_function.h"

namespace progres {
namespace {

TEST(JaroTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("martha", "martha"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
}

TEST(JaroTest, CompletelyDifferent) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
}

TEST(JaroTest, ClassicExamples) {
  // Standard textbook values.
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
  EXPECT_NEAR(JaroSimilarity("jellyfish", "smellyfish"), 0.896296, 1e-5);
}

TEST(JaroTest, Symmetric) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("dwayne", "duane"),
                   JaroSimilarity("duane", "dwayne"));
}

TEST(JaroWinklerTest, ClassicExamples) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.813333, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoostsScore) {
  // Same Jaro contribution, different common prefixes.
  const double with_prefix = JaroWinklerSimilarity("progress", "progrets");
  const double jaro_only = JaroSimilarity("progress", "progrets");
  EXPECT_GT(with_prefix, jaro_only);
}

TEST(JaroWinklerTest, PrefixCapAtFour) {
  // Prefix boost maxes out at 4 characters.
  const double a = JaroWinklerSimilarity("abcdef", "abcdxx");
  const double b = JaroWinklerSimilarity("abcdeef", "abcdexx");
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
  EXPECT_LE(b, 1.0);
}

TEST(JaroWinklerTest, InUnitInterval) {
  const char* samples[] = {"", "a", "ab", "abcd", "zyxw", "hello world"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      const double s = JaroWinklerSimilarity(a, b);
      EXPECT_GE(s, 0.0) << a << " vs " << b;
      EXPECT_LE(s, 1.0) << a << " vs " << b;
    }
  }
}

// ------------------------------------------------ comparators in rules

Entity MakeEntity(EntityId id, std::vector<std::string> attributes) {
  Entity e;
  e.id = id;
  e.attributes = std::move(attributes);
  return e;
}

TEST(MatchRuleTest, JaroWinklerRule) {
  MatchFunction match({{0, AttributeSimilarity::kJaroWinkler, 1.0, 0}}, 0.9);
  EXPECT_TRUE(match.Resolve(MakeEntity(0, {"martha"}),
                            MakeEntity(1, {"marhta"})));
  EXPECT_FALSE(match.Resolve(MakeEntity(0, {"martha"}),
                             MakeEntity(1, {"zzzzz"})));
}

TEST(MatchRuleTest, NumericRuleScalesDifference) {
  AttributeRule rule;
  rule.attribute_index = 0;
  rule.similarity = AttributeSimilarity::kNumeric;
  rule.numeric_scale = 10.0;
  MatchFunction match({rule}, 0.5);
  // |1995 - 1998| = 3 -> sim = 0.7 >= 0.5.
  EXPECT_TRUE(match.Resolve(MakeEntity(0, {"1995"}), MakeEntity(1, {"1998"})));
  // |1995 - 2010| = 15 -> sim = 0 < 0.5.
  EXPECT_FALSE(match.Resolve(MakeEntity(0, {"1995"}), MakeEntity(1, {"2010"})));
  EXPECT_DOUBLE_EQ(
      match.Similarity(MakeEntity(0, {"100"}), MakeEntity(1, {"100"})), 1.0);
}

TEST(MatchRuleTest, NumericRuleFallsBackToExactForNonNumbers) {
  AttributeRule rule;
  rule.attribute_index = 0;
  rule.similarity = AttributeSimilarity::kNumeric;
  rule.numeric_scale = 10.0;
  MatchFunction match({rule}, 0.5);
  EXPECT_TRUE(match.Resolve(MakeEntity(0, {"n/a"}), MakeEntity(1, {"n/a"})));
  EXPECT_FALSE(match.Resolve(MakeEntity(0, {"n/a"}), MakeEntity(1, {"12"})));
  EXPECT_FALSE(match.Resolve(MakeEntity(0, {""}), MakeEntity(1, {"12"})));
}

}  // namespace
}  // namespace progres

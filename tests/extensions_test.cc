// Tests of the extended-report features layered on the core approach:
// per-tree map emission (footnote 5), the per-task cost budget variant, and
// the weighting-function library.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/sorted_neighbor.h"
#include "schedule/schedule.h"

namespace progres {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  return cluster;
}

struct Fixture {
  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.75};
  SortedNeighborMechanism sn;
  ProbabilityModel prob;

  explicit Fixture(int64_t n = 2500) {
    PublicationConfig train_gen;
    train_gen.num_entities = n / 4;
    train_gen.seed = 110;
    train = GeneratePublications(train_gen);
    PublicationConfig gen;
    gen.num_entities = n;
    gen.seed = 111;
    data = GeneratePublications(gen);
    blocking = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                               {"Y", kPubAbstract, {3, 5}, -1},
                               {"Z", kPubVenue, {3, 5}, -1}});
    match = MatchFunction(
        {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
         {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
         {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
        0.75);
    prob = ProbabilityModel::Train(train.dataset, train.truth, blocking);
  }

  ProgressiveErOptions Options() const {
    ProgressiveErOptions options;
    options.cluster = TestCluster();
    return options;
  }
};

// ---------------------------------------------------------- per-tree map

TEST(PerTreeEmissionTest, FindsSameDuplicates) {
  const Fixture fx;
  ProgressiveErOptions per_block = fx.Options();
  per_block.map_emission = MapEmission::kPerBlock;
  ProgressiveErOptions per_tree = fx.Options();
  per_tree.map_emission = MapEmission::kPerTree;

  const ErRunResult a =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, per_block)
          .Run(fx.data.dataset);
  const ErRunResult b =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, per_tree)
          .Run(fx.data.dataset);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.comparisons, b.comparisons);
}

TEST(PerTreeEmissionTest, ReducesShuffleVolume) {
  const Fixture fx;
  ProgressiveErOptions per_block = fx.Options();
  ProgressiveErOptions per_tree = fx.Options();
  per_tree.map_emission = MapEmission::kPerTree;

  const ErRunResult a =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, per_block)
          .Run(fx.data.dataset);
  const ErRunResult b =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, per_tree)
          .Run(fx.data.dataset);
  EXPECT_LT(b.counters.Get("map.emitted_pairs"),
            a.counters.Get("map.emitted_pairs"));
  EXPECT_GT(b.counters.Get("map.emitted_pairs"), 0);
}

TEST(PerTreeEmissionTest, Deterministic) {
  const Fixture fx(1200);
  ProgressiveErOptions options = fx.Options();
  options.map_emission = MapEmission::kPerTree;
  const ProgressiveEr er(fx.blocking, fx.match, fx.sn, fx.prob, options);
  const ErRunResult a = er.Run(fx.data.dataset);
  const ErRunResult b = er.Run(fx.data.dataset);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

// ---------------------------------------------------------- budget

TEST(BudgetTest, BudgetLimitsWork) {
  const Fixture fx;
  ProgressiveErOptions unlimited = fx.Options();
  const ErRunResult full =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, unlimited)
          .Run(fx.data.dataset);

  // Budget: a quarter of the unlimited per-task cost.
  double max_task_cost = 0.0;
  for (const ResultChunk& chunk : full.chunks) {
    max_task_cost = std::max(max_task_cost, chunk.cost_end);
  }
  ProgressiveErOptions budgeted = fx.Options();
  budgeted.per_task_cost_budget = max_task_cost / 4.0;
  const ErRunResult partial =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, budgeted)
          .Run(fx.data.dataset);

  EXPECT_LT(partial.comparisons, full.comparisons);
  EXPECT_LT(partial.total_time, full.total_time);
  const RecallCurve full_curve =
      RecallCurve::FromEvents(full.events, fx.data.truth);
  const RecallCurve partial_curve =
      RecallCurve::FromEvents(partial.events, fx.data.truth);
  EXPECT_LE(partial_curve.final_recall(), full_curve.final_recall());
  // The budget keeps the highest-utility blocks: a quarter of the cost must
  // retain far more than a quarter of the recall.
  EXPECT_GT(partial_curve.final_recall(), 0.5 * full_curve.final_recall());
}

TEST(BudgetTest, TasksRespectBudget) {
  const Fixture fx(1500);
  ProgressiveErOptions options = fx.Options();
  options.per_task_cost_budget = 3000.0;
  const ErRunResult result =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, options)
          .Run(fx.data.dataset);
  // Each task's final cost can exceed the budget only by the cost of its
  // last (already started) block; use a loose factor.
  for (const ResultChunk& chunk : result.chunks) {
    EXPECT_LT(chunk.cost_end, options.per_task_cost_budget * 3.0);
  }
}

// ---------------------------------------------------------- weights

TEST(WeightsTest, ExponentialDecays) {
  const std::vector<double> w = MakeExponentialWeights(4, 0.5);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[3], 0.125);
}

TEST(WeightsTest, StepCutsOff) {
  const std::vector<double> w = MakeStepWeights(5, 0.4);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
  EXPECT_DOUBLE_EQ(w[4], 0.0);
}

TEST(WeightsTest, AllNonIncreasingInUnitRange) {
  for (const std::vector<double>& w :
       {MakeLinearWeights(7), MakeExponentialWeights(7, 0.8),
        MakeStepWeights(7, 0.5)}) {
    for (size_t i = 0; i < w.size(); ++i) {
      EXPECT_GE(w[i], 0.0);
      EXPECT_LE(w[i], 1.0);
      if (i > 0) {
        EXPECT_LE(w[i], w[i - 1]);
      }
    }
  }
}

TEST(WeightsTest, SchedulerAcceptsCustomWeights) {
  const Fixture fx(1200);
  ProgressiveErOptions options = fx.Options();
  options.cost_vector = MakeUniformCostVector(1e5, 4, 8);
  options.weights = MakeExponentialWeights(8, 0.6);
  const ErRunResult result =
      ProgressiveEr(fx.blocking, fx.match, fx.sn, fx.prob, options)
          .Run(fx.data.dataset);
  const RecallCurve curve =
      RecallCurve::FromEvents(result.events, fx.data.truth);
  EXPECT_GT(curve.final_recall(), 0.8);
}

}  // namespace
}  // namespace progres

// Regenerates the driver golden fixtures under tests/golden/. Run it only
// when the drivers' observable behaviour is *meant* to change; the fixtures
// freeze the outputs the refactored runtime must reproduce byte for byte.
//
//   make_er_golden <output-dir>

#include <cstdio>
#include <fstream>
#include <string>

#include "er_golden_util.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_er_golden <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  for (const std::string& name : progres::testing_util::GoldenDriverNames()) {
    const std::string content = progres::testing_util::RunGoldenDriver(name);
    const std::string path = dir + "/" + name + ".golden";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << content;
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
  }
  {
    const std::string content = progres::testing_util::GoldenTraceJson();
    const std::string path = dir + "/trace_progressive.golden";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << content;
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
  }
  return 0;
}

#include <cmath>

#include <gtest/gtest.h>

#include "eval/recall_curve.h"

namespace progres {
namespace {

GroundTruth FourPairTruth() {
  // Clusters {0,1,2} (3 pairs) and {3,4} (1 pair): N = 4.
  return GroundTruth({1, 1, 1, 2, 2});
}

TEST(RecallCurveTest, CountsTruePairsOnce) {
  const GroundTruth truth = FourPairTruth();
  std::vector<DuplicateEvent> events = {
      {1.0, MakePairKey(0, 1)},
      {2.0, MakePairKey(0, 1)},  // repeat: ignored
      {3.0, MakePairKey(3, 4)},
  };
  const RecallCurve curve = RecallCurve::FromEvents(events, truth);
  EXPECT_DOUBLE_EQ(curve.final_recall(), 0.5);
  EXPECT_DOUBLE_EQ(curve.RecallAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(curve.RecallAt(1.0), 0.25);
  EXPECT_DOUBLE_EQ(curve.RecallAt(2.9), 0.25);
  EXPECT_DOUBLE_EQ(curve.RecallAt(100.0), 0.5);
}

TEST(RecallCurveTest, FalsePositivesIgnored) {
  const GroundTruth truth = FourPairTruth();
  std::vector<DuplicateEvent> events = {
      {1.0, MakePairKey(0, 3)},  // not a true duplicate
      {2.0, MakePairKey(1, 2)},
  };
  const RecallCurve curve = RecallCurve::FromEvents(events, truth);
  EXPECT_DOUBLE_EQ(curve.final_recall(), 0.25);
}

TEST(RecallCurveTest, UnsortedEventsAreSorted) {
  const GroundTruth truth = FourPairTruth();
  std::vector<DuplicateEvent> events = {
      {5.0, MakePairKey(1, 2)},
      {1.0, MakePairKey(0, 1)},
  };
  const RecallCurve curve = RecallCurve::FromEvents(events, truth);
  EXPECT_DOUBLE_EQ(curve.RecallAt(1.0), 0.25);
  EXPECT_DOUBLE_EQ(curve.RecallAt(5.0), 0.5);
}

TEST(RecallCurveTest, TimeToRecall) {
  const GroundTruth truth = FourPairTruth();
  std::vector<DuplicateEvent> events = {
      {1.0, MakePairKey(0, 1)},
      {2.0, MakePairKey(0, 2)},
      {4.0, MakePairKey(1, 2)},
      {8.0, MakePairKey(3, 4)},
  };
  const RecallCurve curve = RecallCurve::FromEvents(events, truth);
  EXPECT_DOUBLE_EQ(curve.TimeToRecall(0.25), 1.0);
  EXPECT_DOUBLE_EQ(curve.TimeToRecall(0.5), 2.0);
  EXPECT_DOUBLE_EQ(curve.TimeToRecall(1.0), 8.0);
  EXPECT_TRUE(std::isinf(curve.TimeToRecall(1.1)));
}

TEST(RecallCurveTest, EmptyEvents) {
  const GroundTruth truth = FourPairTruth();
  const RecallCurve curve = RecallCurve::FromEvents({}, truth);
  EXPECT_DOUBLE_EQ(curve.final_recall(), 0.0);
  EXPECT_DOUBLE_EQ(curve.RecallAt(10.0), 0.0);
  EXPECT_TRUE(std::isinf(curve.TimeToRecall(0.1)));
}

TEST(QualityTest, EarlyDiscoveryScoresHigher) {
  const GroundTruth truth = FourPairTruth();
  // Same pairs, found early vs late.
  std::vector<DuplicateEvent> early = {
      {1.0, MakePairKey(0, 1)}, {2.0, MakePairKey(0, 2)},
      {3.0, MakePairKey(1, 2)}, {4.0, MakePairKey(3, 4)}};
  std::vector<DuplicateEvent> late = {
      {7.0, MakePairKey(0, 1)}, {8.0, MakePairKey(0, 2)},
      {9.0, MakePairKey(1, 2)}, {10.0, MakePairKey(3, 4)}};
  const std::vector<double> times = {5.0, 10.0};
  const std::vector<double> weights = {1.0, 0.5};
  const double q_early =
      Quality(RecallCurve::FromEvents(early, truth), times, weights);
  const double q_late =
      Quality(RecallCurve::FromEvents(late, truth), times, weights);
  EXPECT_GT(q_early, q_late);
  EXPECT_DOUBLE_EQ(q_early, 1.0);   // everything inside the first interval
  EXPECT_DOUBLE_EQ(q_late, 0.5);    // everything in the second interval
}

TEST(QualityTest, BoundsAndMonotonicity) {
  const GroundTruth truth = FourPairTruth();
  std::vector<DuplicateEvent> events = {{1.0, MakePairKey(0, 1)},
                                        {6.0, MakePairKey(3, 4)}};
  const RecallCurve curve = RecallCurve::FromEvents(events, truth);
  const double q =
      Quality(curve, {5.0, 10.0}, {1.0, 0.5});
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0);
  EXPECT_DOUBLE_EQ(q, 0.25 * 1.0 + 0.25 * 0.5);
}

}  // namespace
}  // namespace progres

// Storage fault domain suite: deterministic disk-fault injection on the
// spill path (ENOSPC, transient EIO with retry/backoff, torn writes, CRC
// corruption caught at the map barrier), graceful degradation to a fallback
// spill dir, and cross-process restart from persisted checkpoints. The
// acceptance bar mirrors the data-plane contract everywhere else: outputs
// stay byte-identical to the fault-free run on both backends, the
// "mr.disk." / "mr.restart." counters reconcile exactly with the recorded
// trace spans, and a resumed run replays strictly less work than a
// from-scratch one.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "mapreduce/checkpoint.h"
#include "mapreduce/cluster.h"
#include "mapreduce/executor.h"
#include "mapreduce/fault.h"
#include "mapreduce/job.h"
#include "mapreduce/trace.h"
#include "mechanism/sorted_neighbor.h"
#include "model/entity.h"
#include "mr_test_util.h"

namespace progres {
namespace {

using testing_util::CountersMinusMr;

// ------------------------------------------------- FaultPlan unit tests

TEST(FaultPlanDiskTest, DisabledConfigPlansNoDiskFaults) {
  const FaultPlan plan{FaultConfig()};
  EXPECT_FALSE(plan.HasDiskFaults());
  for (int t = 0; t < 8; ++t) {
    EXPECT_FALSE(plan.SpillPrimaryFull(t));
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(plan.SpillWriteErrors(t, r, 0, 5), 0);
      EXPECT_FALSE(plan.SpillTornWrite(t, r, 0));
      EXPECT_FALSE(plan.SpillCorrupted(t, r, 0));
    }
  }
}

TEST(FaultPlanDiskTest, CertainProbabilitiesAlwaysFire) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 3;
  config.spill_enospc_prob = 1.0;
  config.spill_write_error_prob = 1.0;
  config.spill_torn_write_prob = 1.0;
  config.spill_corrupt_prob = 1.0;
  const FaultPlan plan{config};
  ASSERT_TRUE(plan.HasDiskFaults());
  for (int t = 0; t < 8; ++t) {
    EXPECT_TRUE(plan.SpillPrimaryFull(t));
    for (int g = 0; g < 3; ++g) {
      EXPECT_EQ(plan.SpillWriteErrors(t, 0, g, 5), 5);
      EXPECT_TRUE(plan.SpillTornWrite(t, 0, g));
      EXPECT_TRUE(plan.SpillCorrupted(t, 0, g));
    }
  }
}

TEST(FaultPlanDiskTest, DecisionsAreDeterministicAndSeedHashed) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 17;
  config.spill_write_error_prob = 0.5;
  config.spill_torn_write_prob = 0.5;
  config.spill_corrupt_prob = 0.5;
  const FaultPlan a{config};
  const FaultPlan b{config};
  int fired = 0, total = 0;
  for (int t = 0; t < 6; ++t) {
    for (int r = 0; r < 6; ++r) {
      for (int g = 0; g < 3; ++g) {
        EXPECT_EQ(a.SpillWriteError(t, r, g, 0), b.SpillWriteError(t, r, g, 0));
        EXPECT_EQ(a.SpillTornWrite(t, r, g), b.SpillTornWrite(t, r, g));
        EXPECT_EQ(a.SpillCorrupted(t, r, g), b.SpillCorrupted(t, r, g));
        fired += a.SpillCorrupted(t, r, g) ? 1 : 0;
        ++total;
      }
    }
  }
  // A half probability over 108 coordinates is neither all-off nor all-on.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, total);
}

TEST(FaultPlanDiskTest, CorruptOffsetStaysInsideTheFile) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 9;
  config.spill_corrupt_prob = 1.0;
  const FaultPlan plan{config};
  for (const uint64_t bytes : {uint64_t{1}, uint64_t{17}, uint64_t{4096}}) {
    for (int t = 0; t < 4; ++t) {
      EXPECT_LT(plan.SpillCorruptOffset(t, 0, 0, bytes), bytes);
    }
  }
}

// ------------------------------------------------- word-count scaffolding

ClusterConfig TestCluster(ExecutionBackend backend) {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.backend = backend;
  return cluster;
}

// One byte of headroom: every map task spills several runs on this input.
ShuffleBudget TinyBudget() {
  ShuffleBudget budget;
  budget.max_bytes = 1;
  budget.block_bytes = 4096;
  return budget;
}

std::vector<std::string> WordLines(int lines) {
  std::vector<std::string> input;
  input.reserve(static_cast<size_t>(lines));
  for (int i = 0; i < lines; ++i) {
    std::string line;
    for (int w = 0; w < 8; ++w) {
      if (w > 0) line.push_back(' ');
      line += "word" + std::to_string((i * 8 + w * 13) % 50);
    }
    input.push_back(std::move(line));
  }
  return input;
}

using WordJob = MapReduceJob<std::string, std::string, int64_t>;

WordJob::Result RunWordCount(const ClusterConfig& cluster) {
  WordJob job(4, 3);
  return job.Run(
      WordLines(400),
      [](const std::string& line, WordJob::MapContext* ctx) {
        size_t start = 0;
        while (start < line.size()) {
          size_t end = line.find(' ', start);
          if (end == std::string::npos) end = line.size();
          ctx->Emit(line.substr(start, end - start), 1);
          start = end + 1;
        }
      },
      [](const std::string& key, std::vector<int64_t>* values,
         WordJob::ReduceContext* ctx) {
        int64_t sum = 0;
        for (int64_t v : *values) sum += v;
        ctx->Emit(key, sum);
      },
      cluster);
}

// The data plane a disk-faulted run must reproduce byte for byte: outputs
// and user counters. Timing legitimately shifts (retry backoff, barrier
// re-runs), so it is compared only run-vs-run across backends, never
// against the fault-free baseline.
std::string DumpData(const WordJob::Result& result) {
  std::string out;
  out += "failed=" + std::to_string(result.failed ? 1 : 0) + "\n";
  for (const auto& [k, v] : result.outputs) {
    out += k + "=" + std::to_string(v) + "\n";
  }
  for (const auto& [name, value] : CountersMinusMr(result.counters)) {
    out += "counter " + name + "=" + std::to_string(value) + "\n";
  }
  return out;
}

std::string DumpRunWithTiming(const WordJob::Result& result) {
  return "end=" + std::to_string(result.timing.end) + "\n" + DumpData(result);
}

int64_t CountSpans(const std::vector<TraceSpan>& spans, SpanKind kind) {
  int64_t count = 0;
  for (const TraceSpan& span : spans) {
    if (span.kind == kind) ++count;
  }
  return count;
}

FaultConfig TransientWriteFaults() {
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 6;
  fault.spill_write_error_prob = 0.3;
  fault.spill_retry_backoff_seconds = 1.0;
  return fault;
}

FaultConfig CorruptionFaults() {
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 5;
  fault.spill_torn_write_prob = 0.2;
  fault.spill_corrupt_prob = 0.2;
  return fault;
}

// ------------------------------------------------- transient EIO + retry

void CheckTransientWriteErrorsRecover(ExecutionBackend backend) {
  const WordJob::Result baseline = RunWordCount(TestCluster(backend));
  ASSERT_FALSE(baseline.failed) << baseline.error;

  TraceRecorder trace;
  ClusterConfig cluster = TestCluster(backend);
  cluster.shuffle_budget = TinyBudget();
  cluster.fault = TransientWriteFaults();
  cluster.trace = &trace;
  const WordJob::Result faulty = RunWordCount(cluster);
  ASSERT_FALSE(faulty.failed) << faulty.error;

  EXPECT_EQ(DumpData(baseline), DumpData(faulty));
  EXPECT_GT(faulty.counters.Get("mr.disk.write_errors"), 0);
  EXPECT_GT(faulty.counters.Get("mr.disk.retries"), 0);
  // Every retried write survived within budget: no failovers, no failures.
  EXPECT_EQ(faulty.counters.Get("mr.disk.dir_failovers"), 0);
  // Flat 1s backoff per retry makes the rounded tally equal the count.
  EXPECT_EQ(faulty.counters.Get("mr.disk.retry_backoff_seconds"),
            faulty.counters.Get("mr.disk.retries"));
  // Ledger: one kSpillRetry span per counted retry.
  EXPECT_EQ(CountSpans(trace.spans(), SpanKind::kSpillRetry),
            faulty.counters.Get("mr.disk.retries"));
  EXPECT_EQ(CountSpans(trace.spans(), SpanKind::kRunCorrupt), 0);
}

TEST(SpillDiskFaultTest, TransientWriteErrorsRecoverSimulated) {
  CheckTransientWriteErrorsRecover(ExecutionBackend::kSimulated);
}

TEST(SpillDiskFaultTest, TransientWriteErrorsRecoverThreaded) {
  CheckTransientWriteErrorsRecover(ExecutionBackend::kThreaded);
}

// ------------------------------------------------- torn/corrupt runs

void CheckCorruptRunsRerunMaps(ExecutionBackend backend) {
  const WordJob::Result baseline = RunWordCount(TestCluster(backend));
  ASSERT_FALSE(baseline.failed) << baseline.error;

  TraceRecorder trace;
  ClusterConfig cluster = TestCluster(backend);
  cluster.shuffle_budget = TinyBudget();
  cluster.fault = CorruptionFaults();
  cluster.trace = &trace;
  const WordJob::Result faulty = RunWordCount(cluster);
  ASSERT_FALSE(faulty.failed) << faulty.error;

  EXPECT_EQ(DumpData(baseline), DumpData(faulty));
  // Both torn tails and flipped bytes surface as CRC failures at the map
  // barrier, each answered by a map re-run with a fresh generation.
  EXPECT_GT(faulty.counters.Get("mr.disk.corrupt_runs"), 0);
  EXPECT_GT(faulty.counters.Get("mr.disk.torn_writes"), 0);
  EXPECT_GT(faulty.counters.Get("mr.disk.map_reruns"), 0);
  EXPECT_EQ(CountSpans(trace.spans(), SpanKind::kRunCorrupt),
            faulty.counters.Get("mr.disk.corrupt_runs"));
}

TEST(SpillDiskFaultTest, CorruptRunsRerunMapTasksSimulated) {
  CheckCorruptRunsRerunMaps(ExecutionBackend::kSimulated);
}

TEST(SpillDiskFaultTest, CorruptRunsRerunMapTasksThreaded) {
  CheckCorruptRunsRerunMaps(ExecutionBackend::kThreaded);
}

TEST(SpillDiskFaultTest, BackendsAgreeUnderDiskFaults) {
  // Fault decisions are pure functions of the config, so the threaded run
  // must match the simulated one including the simulated timeline.
  ClusterConfig sim = TestCluster(ExecutionBackend::kSimulated);
  sim.shuffle_budget = TinyBudget();
  sim.fault = CorruptionFaults();
  sim.fault.spill_write_error_prob = 0.2;
  ClusterConfig thr = TestCluster(ExecutionBackend::kThreaded);
  thr.shuffle_budget = sim.shuffle_budget;
  thr.fault = sim.fault;

  const WordJob::Result simulated = RunWordCount(sim);
  const WordJob::Result threaded = RunWordCount(thr);
  ASSERT_FALSE(simulated.failed) << simulated.error;
  ASSERT_FALSE(threaded.failed) << threaded.error;
  EXPECT_EQ(DumpRunWithTiming(simulated), DumpRunWithTiming(threaded));
  EXPECT_EQ(simulated.counters.Get("mr.disk.retries"),
            threaded.counters.Get("mr.disk.retries"));
  EXPECT_EQ(simulated.counters.Get("mr.disk.corrupt_runs"),
            threaded.counters.Get("mr.disk.corrupt_runs"));
}

// ------------------------------------------------- ENOSPC + failover

struct SpillDirs {
  std::filesystem::path primary;
  std::filesystem::path fallback;
};

SpillDirs MakeSpillDirs(const std::string& name) {
  SpillDirs dirs;
  dirs.primary = std::filesystem::temp_directory_path() / (name + "_primary");
  dirs.fallback = std::filesystem::temp_directory_path() / (name + "_fallback");
  std::filesystem::remove_all(dirs.primary);
  std::filesystem::remove_all(dirs.fallback);
  std::filesystem::create_directories(dirs.primary);
  std::filesystem::create_directories(dirs.fallback);
  return dirs;
}

int CountEntries(const std::filesystem::path& dir) {
  int entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  return entries;
}

TEST(SpillDiskFaultTest, EnospcFailsOverToFallbackDir) {
  const WordJob::Result baseline =
      RunWordCount(TestCluster(ExecutionBackend::kSimulated));
  const SpillDirs dirs = MakeSpillDirs("progres_diskfault_enospc");

  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget = TinyBudget();
  cluster.shuffle_budget.spill_dir = dirs.primary.string();
  cluster.shuffle_budget.fallback_spill_dir = dirs.fallback.string();
  cluster.fault.enabled = true;
  cluster.fault.spill_enospc_prob = 1.0;
  const WordJob::Result result = RunWordCount(cluster);
  ASSERT_FALSE(result.failed) << result.error;

  EXPECT_EQ(DumpData(baseline), DumpData(result));
  EXPECT_GT(result.counters.Get("mr.disk.enospc"), 0);
  EXPECT_GT(result.counters.Get("mr.disk.dir_failovers"), 0);
  // Run files land in the fallback dir and are still cleaned up after.
  EXPECT_EQ(CountEntries(dirs.primary), 0);
  EXPECT_EQ(CountEntries(dirs.fallback), 0);
  std::filesystem::remove_all(dirs.primary);
  std::filesystem::remove_all(dirs.fallback);
}

TEST(SpillDiskFaultTest, EnospcWithoutFallbackFailsWithALabel) {
  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget = TinyBudget();
  cluster.fault.enabled = true;
  cluster.fault.spill_enospc_prob = 1.0;
  const WordJob::Result result = RunWordCount(cluster);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find("unusable and no fallback spill dir"),
            std::string::npos)
      << result.error;
}

TEST(SpillDiskFaultTest, ExhaustedRetriesFailOverAndRecover) {
  const WordJob::Result baseline =
      RunWordCount(TestCluster(ExecutionBackend::kSimulated));
  const SpillDirs dirs = MakeSpillDirs("progres_diskfault_retries");

  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget = TinyBudget();
  cluster.shuffle_budget.spill_dir = dirs.primary.string();
  cluster.shuffle_budget.fallback_spill_dir = dirs.fallback.string();
  cluster.fault.enabled = true;
  cluster.fault.spill_write_error_prob = 1.0;
  cluster.fault.max_spill_retries = 2;
  const WordJob::Result result = RunWordCount(cluster);
  ASSERT_FALSE(result.failed) << result.error;

  EXPECT_EQ(DumpData(baseline), DumpData(result));
  EXPECT_GT(result.counters.Get("mr.disk.write_errors"), 0);
  EXPECT_GT(result.counters.Get("mr.disk.retries"), 0);
  EXPECT_GT(result.counters.Get("mr.disk.dir_failovers"), 0);
  std::filesystem::remove_all(dirs.primary);
  std::filesystem::remove_all(dirs.fallback);
}

TEST(SpillDiskFaultTest, ExhaustedRetriesWithoutFallbackFailTheJob) {
  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget = TinyBudget();
  cluster.fault.enabled = true;
  cluster.fault.spill_write_error_prob = 1.0;
  cluster.fault.max_spill_retries = 2;
  const WordJob::Result result = RunWordCount(cluster);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find("unusable and no fallback spill dir"),
            std::string::npos)
      << result.error;
}

// ------------------------------------------------- checkpoint persistence

std::filesystem::path FreshDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TaskCheckpoint SampleCheckpoint() {
  TaskCheckpoint checkpoint;
  checkpoint.cost = 42.5;
  checkpoint.groups = 7;
  checkpoint.records_in = 31;
  checkpoint.pairs_out = 12;
  checkpoint.outputs = 3;
  checkpoint.counters.Increment("reduce.groups", 7);
  checkpoint.encoded_outputs = std::string("opaque\0blob", 11);
  return checkpoint;
}

TEST(CheckpointPersistenceTest, SnapshotsRoundTripAcrossStores) {
  const std::filesystem::path dir = FreshDir("progres_diskfault_ckpt");

  CheckpointStore writer;
  writer.ConfigurePersistence(dir.string(), "t", /*resume=*/false);
  ASSERT_TRUE(writer.persistent());
  writer.Reset(2);
  writer.Save(0, SampleCheckpoint());
  EXPECT_EQ(CountEntries(dir), 1);

  CheckpointStore reader;
  reader.ConfigurePersistence(dir.string(), "t", /*resume=*/true);
  reader.Reset(2);
  ASSERT_TRUE(reader.Preloaded(0));
  EXPECT_FALSE(reader.Preloaded(1));
  const TaskCheckpoint* loaded = reader.Latest(0);
  ASSERT_NE(loaded, nullptr);
  const TaskCheckpoint expected = SampleCheckpoint();
  EXPECT_DOUBLE_EQ(loaded->cost, expected.cost);
  EXPECT_EQ(loaded->groups, expected.groups);
  EXPECT_EQ(loaded->records_in, expected.records_in);
  EXPECT_EQ(loaded->pairs_out, expected.pairs_out);
  EXPECT_EQ(loaded->outputs, expected.outputs);
  EXPECT_EQ(loaded->counters.Get("reduce.groups"), 7);
  EXPECT_EQ(loaded->encoded_outputs, expected.encoded_outputs);
  EXPECT_EQ(reader.corrupt_checkpoints(), 0);

  reader.CleanupPersisted();
  EXPECT_EQ(CountEntries(dir), 0);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointPersistenceTest, CorruptSnapshotIsIgnoredAndTallied) {
  const std::filesystem::path dir = FreshDir("progres_diskfault_ckpt_corrupt");
  CheckpointStore writer;
  writer.ConfigurePersistence(dir.string(), "t", /*resume=*/false);
  writer.Reset(1);
  writer.Save(0, SampleCheckpoint());

  // Flip one payload byte; the CRC frame must reject the file.
  const std::filesystem::path file =
      *std::filesystem::directory_iterator(dir);
  {
    std::fstream io(file,
                    std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(12);
    char byte = 0;
    io.seekg(12);
    io.get(byte);
    io.seekp(12);
    io.put(static_cast<char>(byte ^ 0x40));
  }

  CheckpointStore reader;
  reader.ConfigurePersistence(dir.string(), "t", /*resume=*/true);
  reader.Reset(1);
  EXPECT_EQ(reader.Latest(0), nullptr);
  EXPECT_FALSE(reader.Preloaded(0));
  EXPECT_EQ(reader.corrupt_checkpoints(), 1);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointPersistenceTest, TruncatedSnapshotIsIgnored) {
  const std::filesystem::path dir = FreshDir("progres_diskfault_ckpt_trunc");
  CheckpointStore writer;
  writer.ConfigurePersistence(dir.string(), "t", /*resume=*/false);
  writer.Reset(1);
  writer.Save(0, SampleCheckpoint());
  const std::filesystem::path file =
      *std::filesystem::directory_iterator(dir);
  std::filesystem::resize_file(file, std::filesystem::file_size(file) / 2);

  CheckpointStore reader;
  reader.ConfigurePersistence(dir.string(), "t", /*resume=*/true);
  reader.Reset(1);
  EXPECT_EQ(reader.Latest(0), nullptr);
  EXPECT_EQ(reader.corrupt_checkpoints(), 1);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- job-level restart

using IntJob = MapReduceJob<int, int, int>;

constexpr int kMapTasks = 4;
constexpr int kReduceTasks = 3;

ClusterConfig IntCluster(FaultConfig fault = FaultConfig(),
                         ExecutionBackend backend =
                             ExecutionBackend::kSimulated) {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.seconds_per_cost_unit = 1.0;
  cluster.backend = backend;
  cluster.fault = std::move(fault);
  return cluster;
}

// The checkpoint suite's reference job, plus an external tally of reduce
// groups actually executed — the replay a resume must shrink.
IntJob::Result RunIntJob(const ClusterConfig& cluster, CheckpointStore* store,
                         std::atomic<int64_t>* groups_executed = nullptr) {
  std::vector<int> input;
  for (int i = 0; i < 229; ++i) input.push_back(i * 37 % 101);
  IntJob job(kMapTasks, kReduceTasks);
  job.set_map_cost_per_record(0.5);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  if (store != nullptr) {
    job.set_checkpointing(10.0, store, nullptr, nullptr);
  }
  return job.Run(
      input,
      [](const int& record, IntJob::MapContext* ctx) {
        ctx->clock().Charge(0.25);
        ctx->Emit(record % 11, record);
      },
      [groups_executed](const int& key, std::vector<int>* values,
                        IntJob::ReduceContext* ctx) {
        if (groups_executed != nullptr) {
          groups_executed->fetch_add(1, std::memory_order_relaxed);
        }
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->counters().Increment("reduce.groups");
        ctx->clock().Charge(static_cast<double>(values->size()));
        ctx->Emit(key, sum);
      },
      cluster);
}

// Dooms reduce task 0: every allowed attempt carries an injected failure,
// so the job fails — after persisting the boundaries it did cross. The
// surviving snapshot files are exactly what a killed process leaves behind.
FaultConfig DoomReduceTaskZero() {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 3;
  fault.injected = {{TaskPhase::kReduce, 0, 0},
                    {TaskPhase::kReduce, 0, 1},
                    {TaskPhase::kReduce, 0, 2}};
  return fault;
}

TEST(JobRestartTest, FailedRunLeavesSnapshotsAndResumeReplaysFewerGroups) {
  std::atomic<int64_t> clean_groups{0};
  const IntJob::Result baseline =
      RunIntJob(IntCluster(), nullptr, &clean_groups);
  ASSERT_FALSE(baseline.failed) << baseline.error;
  ASSERT_GT(clean_groups.load(), 0);

  const std::filesystem::path dir = FreshDir("progres_diskfault_restart");
  {
    CheckpointStore store;
    store.ConfigurePersistence(dir.string(), "job", /*resume=*/false);
    const IntJob::Result doomed =
        RunIntJob(IntCluster(DoomReduceTaskZero()), &store);
    ASSERT_TRUE(doomed.failed);
    EXPECT_GT(doomed.counters.Get("mr.checkpoint.saved"), 0);
  }
  // A failed job must NOT clean its persisted snapshots — they are the
  // restart's starting point.
  ASSERT_GT(CountEntries(dir), 0);

  TraceRecorder trace;
  CheckpointStore resumed_store;
  resumed_store.ConfigurePersistence(dir.string(), "job", /*resume=*/true);
  ClusterConfig resume_cluster = IntCluster();
  resume_cluster.trace = &trace;
  std::atomic<int64_t> resumed_groups{0};
  const IntJob::Result resumed =
      RunIntJob(resume_cluster, &resumed_store, &resumed_groups);
  ASSERT_FALSE(resumed.failed) << resumed.error;

  // Byte-identical data plane, strictly less replayed work.
  EXPECT_EQ(resumed.outputs, baseline.outputs);
  EXPECT_EQ(CountersMinusMr(resumed.counters),
            CountersMinusMr(baseline.counters));
  EXPECT_LT(resumed_groups.load(), clean_groups.load());

  // Restart ledger: restored-task tally, 1:1 with kRestartRestore spans.
  const int64_t restored_tasks =
      resumed.counters.Get("mr.restart.restored_tasks");
  EXPECT_GT(restored_tasks, 0);
  EXPECT_EQ(CountSpans(trace.spans(), SpanKind::kRestartRestore),
            restored_tasks);
  EXPECT_EQ(resumed.counters.Get("mr.restart.corrupt_checkpoints"), 0);

  // A completed job deletes its snapshots: it must not be resumed again.
  EXPECT_EQ(CountEntries(dir), 0);
  std::filesystem::remove_all(dir);
}

TEST(JobRestartTest, ResumeIsByteIdenticalOnTheThreadedBackend) {
  const IntJob::Result baseline = RunIntJob(IntCluster(), nullptr);
  ASSERT_FALSE(baseline.failed) << baseline.error;

  const std::filesystem::path dir = FreshDir("progres_diskfault_restart_thr");
  {
    CheckpointStore store;
    store.ConfigurePersistence(dir.string(), "job", /*resume=*/false);
    const IntJob::Result doomed =
        RunIntJob(IntCluster(DoomReduceTaskZero()), &store);
    ASSERT_TRUE(doomed.failed);
  }
  ASSERT_GT(CountEntries(dir), 0);

  CheckpointStore resumed_store;
  resumed_store.ConfigurePersistence(dir.string(), "job", /*resume=*/true);
  const IntJob::Result resumed = RunIntJob(
      IntCluster(FaultConfig(), ExecutionBackend::kThreaded), &resumed_store);
  ASSERT_FALSE(resumed.failed) << resumed.error;
  EXPECT_EQ(resumed.outputs, baseline.outputs);
  EXPECT_EQ(CountersMinusMr(resumed.counters),
            CountersMinusMr(baseline.counters));
  EXPECT_GT(resumed.counters.Get("mr.restart.restored_tasks"), 0);
  EXPECT_EQ(CountEntries(dir), 0);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- cross-process restart

struct RestartWorld {
  LabeledDataset data;
  LabeledDataset train;
  BlockingConfig blocking;
  MatchFunction match;
  ProbabilityModel prob;
  SortedNeighborMechanism sn;
  ProgressiveErOptions base;
};

const RestartWorld& DriverWorld() {
  static const RestartWorld* world = [] {
    auto* w = new RestartWorld{
        [] {
          PublicationConfig gen;
          gen.num_entities = 400;
          gen.seed = 31;
          return GeneratePublications(gen);
        }(),
        [] {
          PublicationConfig gen;
          gen.num_entities = 200;
          gen.seed = 32;
          return GeneratePublications(gen);
        }(),
        BlockingConfig(
            {{"X", kPubTitle, {2, 4}, -1}, {"Y", kPubVenue, {3}, -1}}),
        MatchFunction({{kPubTitle, AttributeSimilarity::kEditDistance, 0.7, 0},
                       {kPubVenue, AttributeSimilarity::kEditDistance, 0.3, 0}},
                      0.75),
        ProbabilityModel(),
        SortedNeighborMechanism(),
        ProgressiveErOptions()};
    w->prob = ProbabilityModel::Train(w->train.dataset, w->train.truth,
                                      w->blocking);
    w->base.cluster.machines = 2;
    w->base.cluster.seconds_per_cost_unit = 1e-3;
    w->base.alpha = 100.0;
    return w;
  }();
  return *world;
}

// A mid-run process kill (the crash hook's std::_Exit(17) after two
// persisted saves) followed by a --resume-style rerun: the restarted driver
// restores the dead process's snapshots from disk, finishes the job, and
// resolves the exact same duplicates as an uninterrupted run.
TEST(DriverRestartTest, CrashedDriverProcessResumesByteIdentical) {
  // The death-test child re-execs this binary, so the crashed "process" is
  // a real separate process whose files must survive it.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const RestartWorld& w = DriverWorld();
  const std::filesystem::path dir = FreshDir("progres_diskfault_driver");

  EXPECT_EXIT(
      {
        ProgressiveErOptions options = w.base;
        options.checkpoint_dir = dir.string();
        options.crash_after_checkpoints = 2;
        ProgressiveEr(w.blocking, w.match, w.sn, w.prob, options)
            .Run(w.data.dataset);
        // Only reached if the crash hook never fired — fail the exit-code
        // match instead of falling back into the test harness.
        std::_Exit(0);
      },
      testing::ExitedWithCode(17), "");
  ASSERT_GT(CountEntries(dir), 0)
      << "the killed process left no persisted checkpoints";

  const ErRunResult clean =
      ProgressiveEr(w.blocking, w.match, w.sn, w.prob, w.base)
          .Run(w.data.dataset);
  ASSERT_FALSE(clean.failed) << clean.error;

  ProgressiveErOptions resume = w.base;
  resume.checkpoint_dir = dir.string();
  resume.resume = true;
  const ErRunResult resumed =
      ProgressiveEr(w.blocking, w.match, w.sn, w.prob, resume)
          .Run(w.data.dataset);
  ASSERT_FALSE(resumed.failed) << resumed.error;

  EXPECT_EQ(resumed.duplicates, clean.duplicates);
  EXPECT_GT(resumed.counters.Get("mr.restart.restored_tasks"), 0);
  // The finished run deletes its snapshots.
  EXPECT_EQ(CountEntries(dir), 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace progres

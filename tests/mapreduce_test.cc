#include <map>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/cluster.h"
#include "mapreduce/cost_clock.h"
#include "mapreduce/job.h"

namespace progres {
namespace {

// ------------------------------------------------------------ cost clock

TEST(CostClockTest, Accumulates) {
  CostClock clock;
  clock.Charge(1.5);
  clock.Charge(2.5);
  EXPECT_DOUBLE_EQ(clock.units(), 4.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.units(), 0.0);
}

// ------------------------------------------------------------ scheduler

TEST(ScheduleTasksTest, SingleSlotSerializes) {
  double end = 0.0;
  const std::vector<double> starts =
      ScheduleTasks({10.0, 20.0, 30.0}, 1, 5.0, 1.0, &end);
  EXPECT_DOUBLE_EQ(starts[0], 5.0);
  EXPECT_DOUBLE_EQ(starts[1], 15.0);
  EXPECT_DOUBLE_EQ(starts[2], 35.0);
  EXPECT_DOUBLE_EQ(end, 65.0);
}

TEST(ScheduleTasksTest, ParallelSlotsStartTogether) {
  double end = 0.0;
  const std::vector<double> starts =
      ScheduleTasks({10.0, 20.0}, 2, 0.0, 1.0, &end);
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 0.0);
  EXPECT_DOUBLE_EQ(end, 20.0);
}

TEST(ScheduleTasksTest, WavesUseFreedSlots) {
  // Two slots, three tasks: the third starts when the first finishes.
  double end = 0.0;
  const std::vector<double> starts =
      ScheduleTasks({5.0, 50.0, 5.0}, 2, 0.0, 1.0, &end);
  EXPECT_DOUBLE_EQ(starts[2], 5.0);
  EXPECT_DOUBLE_EQ(end, 50.0);
}

TEST(ScheduleTasksTest, CostUnitsScaleTime) {
  double end = 0.0;
  ScheduleTasks({100.0}, 1, 0.0, 0.01, &end);
  EXPECT_DOUBLE_EQ(end, 1.0);
}

TEST(ScheduleTasksTest, EmptyTaskList) {
  double end = -1.0;
  const std::vector<double> starts = ScheduleTasks({}, 4, 3.0, 1.0, &end);
  EXPECT_TRUE(starts.empty());
  EXPECT_DOUBLE_EQ(end, 3.0);
}

// ------------------------------------------------------------ MR runtime

ClusterConfig TestCluster() {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.seconds_per_cost_unit = 1.0;
  return cluster;
}

TEST(MapReduceJobTest, WordCount) {
  using Job = MapReduceJob<std::string, std::string, int>;
  const std::vector<std::string> input = {"a b a", "b c", "a"};
  Job job(2, 2);
  const auto result = job.Run(
      input,
      [](const std::string& line, Job::MapContext* ctx) {
        size_t start = 0;
        while (start < line.size()) {
          size_t end = line.find(' ', start);
          if (end == std::string::npos) end = line.size();
          ctx->Emit(line.substr(start, end - start), 1);
          start = end + 1;
        }
      },
      [](const std::string& key, std::vector<int>* values,
         Job::ReduceContext* ctx) {
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->Emit(key, sum);
      },
      TestCluster());

  std::map<std::string, int> counts;
  for (const auto& [k, v] : result.outputs) counts[k] = v;
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
}

TEST(MapReduceJobTest, ReduceSeesKeysInSortedOrder) {
  using Job = MapReduceJob<int, int, int>;
  std::vector<int> input;
  for (int i = 0; i < 100; ++i) input.push_back(99 - i);
  Job job(4, 1);  // single reduce task: global order check
  std::vector<int> seen;
  job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, 1); },
      [&seen](const int& key, std::vector<int>* /*values*/,
              Job::ReduceContext* /*ctx*/) { seen.push_back(key); },
      TestCluster());
  ASSERT_EQ(seen.size(), 100u);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
}

TEST(MapReduceJobTest, PartitionerRoutesKeys) {
  using Job = MapReduceJob<int, int, int>;
  Job job(2, 4);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  std::vector<int> task_of_key(16, -1);
  std::mutex mu;
  job.Run(
      std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, 0); },
      [&](const int& key, std::vector<int>* /*values*/,
          Job::ReduceContext* ctx) {
        std::lock_guard<std::mutex> lock(mu);
        task_of_key[static_cast<size_t>(key)] = ctx->task_id();
      },
      TestCluster());
  for (int k = 0; k < 16; ++k) EXPECT_EQ(task_of_key[static_cast<size_t>(k)], k % 4);
}

TEST(MapReduceJobTest, GroupsAllValuesOfAKey) {
  using Job = MapReduceJob<int, int, int>;
  Job job(3, 2);
  std::mutex mu;
  std::map<int, size_t> group_sizes;
  std::vector<int> input;
  for (int i = 0; i < 60; ++i) input.push_back(i % 5);
  job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, record); },
      [&](const int& key, std::vector<int>* values, Job::ReduceContext*) {
        std::lock_guard<std::mutex> lock(mu);
        group_sizes[key] = values->size();
      },
      TestCluster());
  for (int k = 0; k < 5; ++k) EXPECT_EQ(group_sizes[k], 12u);
}

TEST(MapReduceJobTest, MapSetupRunsPerTask) {
  using Job = MapReduceJob<int, int, int>;
  Job job(3, 1);
  std::mutex mu;
  std::vector<int> setup_tasks;
  job.set_map_setup([&](int task_id) {
    std::lock_guard<std::mutex> lock(mu);
    setup_tasks.push_back(task_id);
  });
  job.Run(
      std::vector<int>{1, 2, 3},
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, 1); },
      [](const int&, std::vector<int>*, Job::ReduceContext*) {},
      TestCluster());
  EXPECT_EQ(setup_tasks.size(), 3u);
}

TEST(MapReduceJobTest, CostChargedPerRecordAndManually) {
  using Job = MapReduceJob<int, int, int>;
  Job job(1, 1);
  job.set_map_cost_per_record(2.0);
  const auto result = job.Run(
      std::vector<int>{1, 2, 3},
      [](const int& record, Job::MapContext* ctx) {
        ctx->clock().Charge(0.5);
        ctx->Emit(record, 1);
      },
      [](const int&, std::vector<int>*, Job::ReduceContext* ctx) {
        ctx->clock().Charge(10.0);
      },
      TestCluster());
  ASSERT_EQ(result.map_stats.size(), 1u);
  EXPECT_DOUBLE_EQ(result.map_stats[0].cost, 3 * 2.0 + 3 * 0.5);
  ASSERT_EQ(result.reduce_stats.size(), 1u);
  EXPECT_DOUBLE_EQ(result.reduce_stats[0].cost, 30.0);
}

TEST(MapReduceJobTest, TimingIsConsistent) {
  using Job = MapReduceJob<int, int, int>;
  Job job(2, 2);
  const auto result = job.Run(
      std::vector<int>{1, 2, 3, 4},
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, 1); },
      [](const int&, std::vector<int>*, Job::ReduceContext* ctx) {
        ctx->clock().Charge(7.0);
      },
      TestCluster(), /*submit_time=*/100.0);
  EXPECT_DOUBLE_EQ(result.timing.start, 100.0);
  EXPECT_GE(result.timing.map_end, 100.0);
  for (double start : result.timing.reduce_start) {
    EXPECT_GE(start, result.timing.map_end);
  }
  EXPECT_GE(result.timing.end, result.timing.map_end);
}

TEST(MapReduceJobTest, DeterministicAcrossRuns) {
  using Job = MapReduceJob<int, int, int>;
  std::vector<int> input;
  for (int i = 0; i < 500; ++i) input.push_back(i * 37 % 101);
  const auto run_once = [&input]() {
    Job job(4, 3);
    return job.Run(
        input,
        [](const int& record, Job::MapContext* ctx) {
          ctx->Emit(record % 10, record);
        },
        [](const int& key, std::vector<int>* values, Job::ReduceContext* ctx) {
          int sum = 0;
          for (int v : *values) sum += v;
          ctx->Emit(key, sum);
        },
        TestCluster());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.outputs, b.outputs);
  for (size_t i = 0; i < a.reduce_stats.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.reduce_stats[i].cost, b.reduce_stats[i].cost);
  }
}

TEST(ClusterConfigTest, SlotCounts) {
  ClusterConfig cluster;
  cluster.machines = 10;
  cluster.map_slots_per_machine = 2;
  cluster.reduce_slots_per_machine = 2;
  EXPECT_EQ(cluster.map_slots(), 20);
  EXPECT_EQ(cluster.reduce_slots(), 20);
}

}  // namespace
}  // namespace progres

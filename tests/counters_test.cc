#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/checkpoint.h"
#include "mapreduce/counters.h"
#include "mapreduce/job.h"

namespace progres {
namespace {

TEST(CountersTest, IncrementAndGet) {
  Counters counters;
  EXPECT_EQ(counters.Get("x"), 0);
  counters.Increment("x");
  counters.Increment("x", 4);
  EXPECT_EQ(counters.Get("x"), 5);
  EXPECT_EQ(counters.Get("absent"), 0);
}

TEST(CountersTest, MergeSums) {
  Counters a;
  Counters b;
  a.Increment("shared", 2);
  b.Increment("shared", 3);
  b.Increment("only_b", 7);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("shared"), 5);
  EXPECT_EQ(a.Get("only_b"), 7);
}

ClusterConfig TestCluster() {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  return cluster;
}

TEST(JobCountersTest, MergedAcrossTasks) {
  using Job = MapReduceJob<int, int, int>;
  Job job(3, 2);
  std::vector<int> input = {1, 2, 3, 4, 5, 6};
  const auto result = job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->counters().Increment("map.records");
        ctx->Emit(record % 2, record);
      },
      [](const int&, std::vector<int>* values, Job::ReduceContext* ctx) {
        ctx->counters().Increment("reduce.values",
                                  static_cast<int64_t>(values->size()));
      },
      TestCluster());
  EXPECT_EQ(result.counters.Get("map.records"), 6);
  EXPECT_EQ(result.counters.Get("reduce.values"), 6);
}

TEST(JobCountersTest, UserCountersIndependentOfReservedOnes) {
  // User counters and the runtime's reserved "mr." bookkeeping live in the
  // same namespace but never interfere: the runtime only increments "mr."
  // names, and merging tasks sums the two families independently.
  using Job = MapReduceJob<int, int, int>;
  Job job(2, 2);
  job.set_wire_size([](const int&, const int&) { return int64_t{8}; });
  std::vector<int> input = {1, 2, 3, 4};
  const auto result = job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->counters().Increment("user.map", 10);
        ctx->Emit(record, record);
      },
      [](const int&, std::vector<int>*, Job::ReduceContext* ctx) {
        ctx->counters().Increment("user.reduce", 100);
      },
      TestCluster());
  // The user's counters hold exactly what the tasks put there...
  EXPECT_EQ(result.counters.Get("user.map"), 40);
  EXPECT_EQ(result.counters.Get("user.reduce"), 400);
  // ...and the runtime's bookkeeping landed only under "mr.".
  EXPECT_EQ(result.counters.Get("mr.attempts"), 4);  // 2 map + 2 reduce tasks
  EXPECT_EQ(result.counters.Get("mr.failed_attempts"), 0);
  EXPECT_EQ(result.counters.Get("mr.shuffle.records"), 4);
  EXPECT_EQ(result.counters.Get("mr.shuffle.bytes"), 32);
  for (const auto& [name, value] : result.counters.values()) {
    if (name.rfind("mr.", 0) == 0) continue;
    EXPECT_TRUE(name.rfind("user.", 0) == 0) << name;
  }
}

TEST(JobCountersTest, RetriedAttemptsDoNotDoubleCountUserCounters) {
  // A failed attempt's user counters must be discarded with the attempt —
  // the job-wide totals count each record/value exactly once, for scratch
  // retries and checkpoint-resumed retries alike.
  using Job = MapReduceJob<int, int, int>;
  const auto run = [](const ClusterConfig& cluster, CheckpointStore* store) {
    Job job(2, 2);
    if (store != nullptr) job.set_checkpointing(5.0, store, nullptr, nullptr);
    std::vector<int> input;
    for (int i = 0; i < 60; ++i) input.push_back(i);
    return job.Run(
        input,
        [](const int& record, Job::MapContext* ctx) {
          ctx->counters().Increment("user.map_records");
          ctx->Emit(record % 6, record);
        },
        [](const int&, std::vector<int>* values, Job::ReduceContext* ctx) {
          ctx->counters().Increment("user.reduce_values",
                                    static_cast<int64_t>(values->size()));
          ctx->clock().Charge(static_cast<double>(values->size()));
        },
        cluster);
  };

  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 5;
  for (int task = 0; task < 2; ++task) {
    fault.injected.push_back({TaskPhase::kMap, task, 0});
    fault.injected.push_back({TaskPhase::kReduce, task, 0});
    fault.injected.push_back({TaskPhase::kReduce, task, 1});
  }
  ClusterConfig faulty = TestCluster();
  faulty.fault = fault;

  const auto clean = run(TestCluster(), nullptr);
  const auto scratch = run(faulty, nullptr);
  CheckpointStore store;
  const auto resumed = run(faulty, &store);

  ASSERT_FALSE(scratch.failed) << scratch.error;
  ASSERT_FALSE(resumed.failed) << resumed.error;
  EXPECT_EQ(clean.counters.Get("user.map_records"), 60);
  EXPECT_EQ(clean.counters.Get("user.reduce_values"), 60);
  EXPECT_EQ(scratch.counters.Get("user.map_records"), 60);
  EXPECT_EQ(scratch.counters.Get("user.reduce_values"), 60);
  EXPECT_EQ(resumed.counters.Get("user.map_records"), 60);
  EXPECT_EQ(resumed.counters.Get("user.reduce_values"), 60);
  // The retries themselves are visible — but only under "mr.".
  EXPECT_GE(scratch.counters.Get("mr.failed_attempts"), 6);
  EXPECT_GE(resumed.counters.Get("mr.failed_attempts"), 6);
}

TEST(JobCountersTest, ShuffleAccountingSkipsEmptyPartitions) {
  // A partitioner that routes everything to reduce task 0 leaves the other
  // partitions empty: wire-size accounting must count only the pairs that
  // actually cross the shuffle, and empty partitions contribute nothing.
  using Job = MapReduceJob<int, int, int>;
  Job job(2, 4);
  job.set_partitioner([](const int&, int) { return 0; });
  job.set_wire_size([](const int&, const int&) { return int64_t{8}; });
  std::vector<int> input = {1, 2, 3, 4, 5};
  const auto result = job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, 1); },
      [](const int&, std::vector<int>*, Job::ReduceContext* ctx) {
        ctx->counters().Increment("reduce.groups");
      },
      TestCluster());
  ASSERT_FALSE(result.failed);
  EXPECT_EQ(result.counters.Get("mr.shuffle.records"), 5);
  EXPECT_EQ(result.counters.Get("mr.shuffle.bytes"), 40);
  EXPECT_EQ(result.counters.Get("reduce.groups"), 5);
  // All four reduce tasks ran; three saw no input.
  ASSERT_EQ(result.reduce_stats.size(), 4u);
  EXPECT_EQ(result.reduce_stats[0].records_in, 5);
  for (size_t t = 1; t < 4; ++t) {
    EXPECT_EQ(result.reduce_stats[t].records_in, 0);
  }
}

TEST(JobCombinerTest, AggregatesBeforeShuffle) {
  using Job = MapReduceJob<int, int, int>;
  Job job(2, 2);
  // 100 records, 4 keys: the combiner collapses each map task's values to
  // one pair per key, so the reduce side sees at most tasks * keys values.
  std::vector<int> input;
  for (int i = 0; i < 100; ++i) input.push_back(i);
  job.set_combiner([](const int& key, std::vector<int>* values,
                      std::vector<std::pair<int, int>>* out) {
    int sum = 0;
    for (int v : *values) sum += v;
    out->emplace_back(key, sum);
  });
  std::mutex mu;
  int64_t reduce_values = 0;
  int64_t total = 0;
  job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->Emit(record % 4, record);
      },
      [&](const int&, std::vector<int>* values, Job::ReduceContext*) {
        std::lock_guard<std::mutex> lock(mu);
        reduce_values += static_cast<int64_t>(values->size());
        for (int v : *values) total += v;
      },
      TestCluster());
  EXPECT_LE(reduce_values, 2 * 4);  // map tasks * keys
  EXPECT_EQ(total, 99 * 100 / 2);   // sums preserved
}

TEST(JobCombinerTest, CombinerPreservesResults) {
  using Job = MapReduceJob<std::string, std::string, int>;
  const std::vector<std::string> input = {"a", "b", "a", "c", "a", "b"};
  const auto run = [&input](bool with_combiner) {
    Job job(3, 2);
    if (with_combiner) {
      job.set_combiner([](const std::string& key, std::vector<int>* values,
                          std::vector<std::pair<std::string, int>>* out) {
        int sum = 0;
        for (int v : *values) sum += v;
        out->emplace_back(key, sum);
      });
    }
    auto result = job.Run(
        input,
        [](const std::string& record, Job::MapContext* ctx) {
          ctx->Emit(record, 1);
        },
        [](const std::string& key, std::vector<int>* values,
           Job::ReduceContext* ctx) {
          int sum = 0;
          for (int v : *values) sum += v;
          ctx->Emit(key, sum);
        },
        TestCluster());
    std::sort(result.outputs.begin(), result.outputs.end());
    return result.outputs;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(JobCleanupTest, RunsOncePerReduceTask) {
  using Job = MapReduceJob<int, int, int>;
  Job job(2, 3);
  std::mutex mu;
  std::vector<int> cleaned;
  job.set_reduce_cleanup([&](Job::ReduceContext* ctx) {
    std::lock_guard<std::mutex> lock(mu);
    cleaned.push_back(ctx->task_id());
    ctx->Emit(-1, ctx->task_id());
  });
  const auto result = job.Run(
      std::vector<int>{1, 2, 3, 4},
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, 1); },
      [](const int&, std::vector<int>*, Job::ReduceContext*) {},
      TestCluster());
  EXPECT_EQ(cleaned.size(), 3u);
  // Cleanup emissions land in the outputs.
  int cleanup_outputs = 0;
  for (const auto& [k, v] : result.outputs) {
    if (k == -1) ++cleanup_outputs;
  }
  EXPECT_EQ(cleanup_outputs, 3);
}

}  // namespace
}  // namespace progres

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "estimate/family_order.h"

namespace progres {
namespace {

TEST(FamilyOrderTest, MeasuresAllCandidates) {
  PublicationConfig gen;
  gen.num_entities = 2000;
  gen.seed = 140;
  const LabeledDataset data = GeneratePublications(gen);
  const std::vector<FamilySpec> candidates = {
      {"X", kPubTitle, {2, 4, 8}, -1},
      {"Y", kPubAbstract, {3, 5}, -1},
      {"Z", kPubVenue, {3, 5}, -1},
  };
  const std::vector<FamilyQuality> qualities =
      MeasureFamilies(candidates, data.dataset, data.truth);
  ASSERT_EQ(qualities.size(), 3u);
  for (const FamilyQuality& q : qualities) {
    EXPECT_GT(q.total_pairs, 0);
    EXPECT_GE(q.duplicate_pairs, 0);
    EXPECT_LE(q.duplicate_pairs, q.total_pairs);
    EXPECT_GE(q.ratio(), 0.0);
    EXPECT_LE(q.ratio(), 1.0);
  }
}

TEST(FamilyOrderTest, VenueBlocksHaveLowestDensity) {
  // The paper's motivating example (Sec. IV-A): blocking on a
  // low-cardinality attribute (state/venue) produces unnecessarily large
  // blocks with a low percentage of duplicate pairs, so it should be the
  // least dominating function.
  PublicationConfig gen;
  gen.num_entities = 4000;
  gen.seed = 141;
  const LabeledDataset data = GeneratePublications(gen);
  const std::vector<FamilySpec> candidates = {
      {"X", kPubTitle, {2, 4, 8}, -1},
      {"Z", kPubVenue, {3, 5}, -1},
  };
  const std::vector<FamilyQuality> qualities =
      MeasureFamilies(candidates, data.dataset, data.truth);
  EXPECT_GT(qualities[0].ratio(), qualities[1].ratio());
}

TEST(FamilyOrderTest, OrdersByRatio) {
  PublicationConfig gen;
  gen.num_entities = 3000;
  gen.seed = 142;
  const LabeledDataset data = GeneratePublications(gen);
  // Deliberately list the weakest family first.
  const std::vector<FamilySpec> candidates = {
      {"Z", kPubVenue, {3, 5}, -1},
      {"Y", kPubAbstract, {3, 5}, -1},
      {"X", kPubTitle, {2, 4, 8}, -1},
  };
  const std::vector<FamilySpec> ordered =
      OrderFamiliesByDominance(candidates, data.dataset, data.truth);
  ASSERT_EQ(ordered.size(), 3u);
  // Venue must not come out on top.
  EXPECT_NE(ordered.front().name, "Z");
  EXPECT_EQ(ordered.back().name, "Z");
  // Measured ratios of the output order are non-increasing.
  const std::vector<FamilyQuality> qualities =
      MeasureFamilies(ordered, data.dataset, data.truth);
  for (size_t i = 1; i < qualities.size(); ++i) {
    EXPECT_GE(qualities[i - 1].ratio() + 1e-12, qualities[i].ratio());
  }
}

TEST(FamilyOrderTest, EmptyCandidates) {
  const LabeledDataset toy = GeneratePeopleToy();
  EXPECT_TRUE(
      OrderFamiliesByDominance({}, toy.dataset, toy.truth).empty());
}

}  // namespace
}  // namespace progres

#include <algorithm>

#include <gtest/gtest.h>

#include "eval/clustering.h"

namespace progres {
namespace {

TEST(TransitiveClosureTest, ChainsMerge) {
  // 0-1, 1-2 chain plus isolated 3.
  const std::vector<PairKey> pairs = {MakePairKey(0, 1), MakePairKey(1, 2)};
  const std::vector<int32_t> clusters = TransitiveClosure(4, pairs);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[1], clusters[2]);
  EXPECT_NE(clusters[0], clusters[3]);
}

TEST(TransitiveClosureTest, NoPairsAllSingletons) {
  const std::vector<int32_t> clusters = TransitiveClosure(3, {});
  EXPECT_NE(clusters[0], clusters[1]);
  EXPECT_NE(clusters[1], clusters[2]);
}

TEST(CorrelationClusteringTest, PivotGrabsDirectNeighbors) {
  // Star: 0-1, 0-2. Pivot 0 grabs both.
  const std::vector<PairKey> pairs = {MakePairKey(0, 1), MakePairKey(0, 2)};
  const std::vector<int32_t> clusters = CorrelationClustering(3, pairs);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[0], clusters[2]);
}

TEST(CorrelationClusteringTest, DoesNotChainThroughWeakLinks) {
  // Path 0-1, 1-2 (no 0-2 edge): pivot 0 grabs 1; 2 is then alone because
  // its only edge goes to the already-clustered 1. Transitive closure would
  // merge all three.
  const std::vector<PairKey> pairs = {MakePairKey(0, 1), MakePairKey(1, 2)};
  const std::vector<int32_t> correlation = CorrelationClustering(3, pairs);
  EXPECT_EQ(correlation[0], correlation[1]);
  EXPECT_NE(correlation[0], correlation[2]);
}

TEST(CorrelationClusteringTest, CliqueStaysTogether) {
  const std::vector<PairKey> pairs = {MakePairKey(0, 1), MakePairKey(0, 2),
                                      MakePairKey(1, 2)};
  const std::vector<int32_t> clusters = CorrelationClustering(3, pairs);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[0], clusters[2]);
}

TEST(EvaluateClusteringTest, PerfectClustering) {
  const GroundTruth truth({1, 1, 2, 2, 2});
  const PairMetrics m = EvaluateClustering({0, 0, 1, 1, 1}, truth);
  EXPECT_EQ(m.true_positives, 4);
  EXPECT_EQ(m.false_positives, 0);
  EXPECT_EQ(m.false_negatives, 0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(EvaluateClusteringTest, OvermergedClustering) {
  // Everything in one cluster: recall 1, precision = 4/10.
  const GroundTruth truth({1, 1, 2, 2, 2});
  const PairMetrics m = EvaluateClustering({0, 0, 0, 0, 0}, truth);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.4);
  EXPECT_EQ(m.false_positives, 6);
}

TEST(EvaluateClusteringTest, SplitClustering) {
  // All singletons: precision undefined -> 0, recall 0.
  const GroundTruth truth({1, 1, 2, 2, 2});
  const PairMetrics m = EvaluateClustering({0, 1, 2, 3, 4}, truth);
  EXPECT_EQ(m.true_positives, 0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(EvaluatePairsTest, CountsUniquePairs) {
  const GroundTruth truth({1, 1, 2, 2});
  const std::vector<PairKey> pairs = {MakePairKey(0, 1), MakePairKey(0, 1),
                                      MakePairKey(0, 2)};
  const PairMetrics m = EvaluatePairs(pairs, truth);
  EXPECT_EQ(m.true_positives, 1);
  EXPECT_EQ(m.false_positives, 1);
  EXPECT_EQ(m.false_negatives, 1);  // pair (2,3) missed
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(MetricsTest, F1IsHarmonicMean) {
  const GroundTruth truth({1, 1, 1});  // 3 pairs
  const PairMetrics m = EvaluatePairs({MakePairKey(0, 1)}, truth);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_NEAR(m.recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.f1, 2.0 * 1.0 * (1.0 / 3.0) / (1.0 + 1.0 / 3.0), 1e-12);
}

}  // namespace
}  // namespace progres

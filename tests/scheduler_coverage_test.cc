// Property tests for the reduce-side schedulers: for every scheduler the
// union of per-task block/pair assignments must cover every candidate pair
// of every live block exactly once, and the pair-level schedulers
// (BlockSplit, PairRange) must bound per-task load on the head-heavy
// mega-block profile. The pair universe is materialized from the canonical
// d-major enumeration both mechanisms share, so the tests prove the
// MatchTask restrictions partition it — no pair lost, none compared twice.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/forest.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "estimate/prob_model.h"
#include "mechanism/psnm.h"
#include "mechanism/sorted_neighbor.h"
#include "schedule/schedule.h"

namespace progres {
namespace {

constexpr TreeScheduler kAllSchedulers[] = {
    TreeScheduler::kOurs, TreeScheduler::kNoSplit, TreeScheduler::kLpt,
    TreeScheduler::kBlockSplit, TreeScheduler::kPairRange};

const char* SchedulerName(TreeScheduler s) {
  switch (s) {
    case TreeScheduler::kOurs:
      return "ours";
    case TreeScheduler::kNoSplit:
      return "nosplit";
    case TreeScheduler::kLpt:
      return "lpt";
    case TreeScheduler::kBlockSplit:
      return "blocksplit";
    case TreeScheduler::kPairRange:
      return "pairrange";
  }
  return "?";
}

struct Fixture {
  LabeledDataset data;
  BlockingConfig config{std::vector<FamilySpec>{}};
  ProbabilityModel prob;
  EstimateParams params;

  explicit Fixture(int64_t n, uint64_t seed, double mega_fraction = 0.0) {
    PublicationConfig gen;
    gen.num_entities = n;
    gen.seed = seed;
    gen.mega_block_fraction = mega_fraction;
    data = GeneratePublications(gen);
    config = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                             {"Y", kPubAbstract, {3, 5}, -1},
                             {"Z", kPubVenue, {3, 5}, -1}});
  }

  std::vector<AnnotatedForest> Annotate() {
    std::vector<Forest> forests =
        BuildForests(data.dataset, config, /*keep_members=*/false);
    ComputeUncoveredPairs(data.dataset, config, &forests);
    prob = ProbabilityModel::Train(data.dataset, data.truth, config);
    return AnnotateForests(forests, params, prob, data.dataset.size());
  }
};

struct BlockShape {
  int64_t size = 0;
  int window = 0;
  int64_t pairs = 0;
};

// Every live (non-eliminated) block across all forests — the candidate-pair
// universe a schedule must cover. Collected after GenerateSchedule so kOurs'
// tree splits are reflected (splits never add or remove blocks).
std::map<uint64_t, BlockShape> Universe(
    const std::vector<AnnotatedForest>& forests) {
  std::map<uint64_t, BlockShape> universe;
  for (const AnnotatedForest& forest : forests) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      const AnnotatedBlock& b = forest.block(n);
      if (b.eliminated) continue;
      universe[BlockRefKey(forest.family(), n)] = {
          b.size, b.window, WindowPairCount(b.size, b.window)};
    }
  }
  return universe;
}

// Walks the block's canonical d-major enumeration and bumps `cover` at every
// index `unit` admits. Returns the number of admitted pairs, which must
// equal the unit's declared scheduling cost.
int64_t Materialize(const MatchTask& unit, const BlockShape& shape,
                    std::vector<int>* cover) {
  int64_t admitted = 0;
  int64_t index = -1;
  const int64_t max_d = std::min<int64_t>(shape.window - 1, shape.size - 1);
  for (int64_t d = 1; d <= max_d; ++d) {
    for (int64_t i = 0; i + d < shape.size; ++i) {
      ++index;
      const int64_t j = i + d;
      bool admit = true;
      switch (unit.kind) {
        case MatchTask::Kind::kWhole:
          break;
        case MatchTask::Kind::kSub:
          admit = i >= unit.a_lo && i < unit.a_hi && j >= unit.b_lo &&
                  j < unit.b_hi;
          break;
        case MatchTask::Kind::kSlice:
          admit = index >= unit.begin && index < unit.end;
          break;
      }
      if (!admit) continue;
      ++admitted;
      ++(*cover)[static_cast<size_t>(index)];
    }
  }
  return admitted;
}

ScheduleParams Params(int r, TreeScheduler scheduler) {
  ScheduleParams p;
  p.num_reduce_tasks = r;
  p.scheduler = scheduler;
  return p;
}

// The core property: for every scheduler and task count, on both a plain
// and a mega-block-skewed workload, the per-task assignments partition the
// candidate-pair universe — every pair of every live block exactly once.
TEST(SchedulerCoverageTest, EveryCandidatePairAssignedExactlyOnce) {
  struct Profile {
    uint64_t seed;
    double mega;
  };
  for (const Profile profile : {Profile{91, 0.0}, Profile{92, 0.3}}) {
    Fixture fx(2000, profile.seed, profile.mega);
    for (const TreeScheduler scheduler : kAllSchedulers) {
      for (const int r : {1, 3, 7}) {
        SCOPED_TRACE(std::string(SchedulerName(scheduler)) + " r=" +
                     std::to_string(r) + " mega=" +
                     std::to_string(profile.mega));
        std::vector<AnnotatedForest> forests = fx.Annotate();
        const ProgressiveSchedule schedule =
            GenerateSchedule(&forests, Params(r, scheduler));
        ASSERT_EQ(schedule.error, "");
        ASSERT_EQ(schedule.task_units.size(), static_cast<size_t>(r));

        const std::map<uint64_t, BlockShape> universe = Universe(forests);
        std::map<uint64_t, std::vector<int>> cover;
        for (const auto& [key, shape] : universe) {
          cover[key].assign(static_cast<size_t>(shape.pairs), 0);
        }

        for (const std::vector<MatchTask>& units : schedule.task_units) {
          for (const MatchTask& unit : units) {
            const uint64_t key = BlockRefKey(unit.ref);
            const auto it = universe.find(key);
            ASSERT_NE(it, universe.end())
                << "unit references unknown block family=" << unit.ref.family
                << " node=" << unit.ref.node;
            const int64_t admitted =
                Materialize(unit, it->second, &cover[key]);
            EXPECT_EQ(admitted, unit.pairs)
                << "unit cost disagrees with its enumeration, block family="
                << unit.ref.family << " node=" << unit.ref.node;
          }
        }

        for (const auto& [key, counts] : cover) {
          for (size_t i = 0; i < counts.size(); ++i) {
            ASSERT_EQ(counts[i], 1)
                << "pair index " << i << " of block key " << key
                << " covered " << counts[i] << " times";
          }
        }
      }
    }
  }
}

// The mega-block knob must actually produce a head-heavy profile: one
// title-prefix root block holding a large share of the entities, far above
// what the plain Zipf draw produces.
TEST(SchedulerCoverageTest, MegaBlockProfileSkewsTitleFamily) {
  const int64_t n = 2000;
  const auto max_title_root = [](Fixture* fx) {
    std::vector<AnnotatedForest> forests = fx->Annotate();
    int64_t max_size = 0;
    for (int b = 0; b < forests[0].num_blocks(); ++b) {
      const AnnotatedBlock& block = forests[0].block(b);
      if (block.parent == -1 && !block.eliminated) {
        max_size = std::max(max_size, block.size);
      }
    }
    return max_size;
  };
  Fixture plain(n, 91, 0.0);
  Fixture mega(n, 91, 0.3);
  const int64_t plain_max = max_title_root(&plain);
  const int64_t mega_max = max_title_root(&mega);
  EXPECT_GE(mega_max, n / 5) << "mega profile did not concentrate a block";
  EXPECT_GT(mega_max, plain_max) << "mega knob had no effect on skew";
}

// Load-imbalance bounds on the mega-block profile, at a task count chosen
// so the mega block overflows the per-task average and must be split.
TEST(SchedulerCoverageTest, PairLevelSchedulersBoundImbalanceOnMegaBlock) {
  Fixture fx(2000, 92, 0.3);
  std::vector<AnnotatedForest> probe = fx.Annotate();
  const std::map<uint64_t, BlockShape> shapes = Universe(probe);
  int64_t total = 0;
  int64_t max_block = 0;
  for (const auto& [key, shape] : shapes) {
    total += shape.pairs;
    max_block = std::max(max_block, shape.pairs);
  }
  ASSERT_GT(max_block, 0);
  // Enough tasks that the largest block is at least twice the per-task
  // average — BlockSplit must split it and PairRange must slice it.
  const int r = std::max<int>(2, static_cast<int>(2 * total / max_block));

  for (const TreeScheduler scheduler :
       {TreeScheduler::kBlockSplit, TreeScheduler::kPairRange}) {
    SCOPED_TRACE(std::string(SchedulerName(scheduler)) + " r=" +
                 std::to_string(r));
    std::vector<AnnotatedForest> forests = fx.Annotate();
    const ProgressiveSchedule schedule =
        GenerateSchedule(&forests, Params(r, scheduler));
    ASSERT_EQ(schedule.error, "");

    int64_t max_load = 0;
    int64_t max_unit = 0;
    size_t units = 0;
    for (const std::vector<MatchTask>& task : schedule.task_units) {
      int64_t load = 0;
      for (const MatchTask& unit : task) {
        load += unit.pairs;
        max_unit = std::max(max_unit, unit.pairs);
        ++units;
      }
      max_load = std::max(max_load, load);
    }
    EXPECT_GT(units, shapes.size())
        << "expected the mega block to be split into multiple units";

    if (scheduler == TreeScheduler::kPairRange) {
      // Contiguous carving: no task exceeds ceil(total / r).
      EXPECT_LE(max_load, (total + r - 1) / r);
    } else {
      // Greedy least-loaded: max load <= average + largest unit, and the
      // split kept every unit under the per-task average.
      EXPECT_LE(max_unit, (total + r - 1) / r);
      EXPECT_LE(max_load, total / r + max_unit);
    }
  }
}

// ---------------------------------------------------------------- mechanism

// The schedule-level tests prove the MatchTask descriptions partition the
// pair space; these prove the mechanisms' restriction plumbing enumerates
// exactly the described pairs: resolving a block's BlockSplit-style
// sub-range units or PairRange-style slices compares exactly the pairs the
// unrestricted run compares, each once.

std::vector<Entity> RandomBlock(int64_t n, Rng* rng) {
  std::vector<Entity> entities;
  entities.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::string value;
    for (int c = 0; c < 6; ++c) {
      value.push_back(static_cast<char>('a' + rng->UniformU64(26)));
    }
    Entity e;
    e.id = static_cast<EntityId>(i);
    e.attributes = {value};
    entities.push_back(std::move(e));
  }
  return entities;
}

// Runs `mechanism` over `entities` with `options` and returns every pair the
// enumeration reached, recorded through the responsibility predicate (which
// fires after the window/restriction checks and admits everything).
std::vector<PairKey> RecordPairs(const ProgressiveMechanism& mechanism,
                                 const std::vector<Entity>& entities,
                                 const MatchFunction& match,
                                 ResolveOptions options) {
  std::vector<PairKey> recorded;
  const std::function<bool(const Entity&, const Entity&)> record =
      [&recorded](const Entity& a, const Entity& b) {
        recorded.push_back(MakePairKey(a.id, b.id));
        return true;
      };
  CostClock clock;
  std::vector<const Entity*> block;
  for (const Entity& e : entities) block.push_back(&e);
  ResolveRequest request;
  request.block = &block;
  request.sort_attribute = 0;
  request.match = &match;
  request.options = options;
  request.clock = &clock;
  request.should_resolve = &record;
  mechanism.Resolve(request);
  return recorded;
}

TEST(MechanismPartitionTest, UnitsEnumerateExactlyTheWholeBlockPairs) {
  Rng rng(7);
  const MatchFunction match({{0, AttributeSimilarity::kExact, 1.0, 0}}, 0.5);
  const SortedNeighborMechanism sn;
  const PsnmMechanism psnm({}, /*partition_size=*/32);
  const std::vector<const ProgressiveMechanism*> mechanisms = {&sn, &psnm};

  for (const int64_t n : {2, 17, 64, 301}) {
    const std::vector<Entity> entities = RandomBlock(n, &rng);
    for (const int window : {5, 15}) {
      ResolveOptions whole_options;
      whole_options.window = window;
      const int64_t total = WindowPairCount(n, window);
      for (const ProgressiveMechanism* mechanism : mechanisms) {
        SCOPED_TRACE(mechanism->name() + " n=" + std::to_string(n) +
                     " w=" + std::to_string(window));
        std::vector<PairKey> whole =
            RecordPairs(*mechanism, entities, match, whole_options);
        ASSERT_EQ(static_cast<int64_t>(whole.size()), total);
        std::sort(whole.begin(), whole.end());

        // BlockSplit-style: m singles + m-1 crosses over contiguous
        // sub-ranges of the sorted order, every range >= window wide.
        const int64_t max_m = std::max<int64_t>(1, n / window);
        for (const int64_t m : {int64_t{2}, max_m}) {
          if (m < 2 || m > max_m) continue;
          const auto boundary = [&](int64_t k) { return k * n / m; };
          std::vector<PairKey> merged;
          for (int64_t k = 0; k < m; ++k) {
            ResolveOptions o = whole_options;
            o.sub_a_lo = o.sub_b_lo = boundary(k);
            o.sub_a_hi = o.sub_b_hi = boundary(k + 1);
            const std::vector<PairKey> got =
                RecordPairs(*mechanism, entities, match, o);
            merged.insert(merged.end(), got.begin(), got.end());
          }
          for (int64_t k = 0; k + 1 < m; ++k) {
            ResolveOptions o = whole_options;
            o.sub_a_lo = boundary(k);
            o.sub_a_hi = boundary(k + 1);
            o.sub_b_lo = boundary(k + 1);
            o.sub_b_hi = boundary(k + 2);
            const std::vector<PairKey> got =
                RecordPairs(*mechanism, entities, match, o);
            merged.insert(merged.end(), got.begin(), got.end());
          }
          std::sort(merged.begin(), merged.end());
          EXPECT_EQ(merged, whole) << "m=" << m;
        }

        // PairRange-style: contiguous enumeration-index slices.
        for (const int64_t r : {int64_t{3}, int64_t{8}}) {
          std::vector<PairKey> merged;
          for (int64_t t = 0; t < r; ++t) {
            ResolveOptions o = whole_options;
            o.slice_begin = t * total / r;
            o.slice_end = (t + 1) * total / r;
            const std::vector<PairKey> got =
                RecordPairs(*mechanism, entities, match, o);
            merged.insert(merged.end(), got.begin(), got.end());
          }
          std::sort(merged.begin(), merged.end());
          EXPECT_EQ(merged, whole) << "r=" << r;
        }
      }
    }
  }
}

}  // namespace
}  // namespace progres

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/mrsn_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  return cluster;
}

BlockingConfig PublicationBlocking() {
  return BlockingConfig({{"X", kPubTitle, {2}, -1},
                         {"Y", kPubAbstract, {3}, -1},
                         {"Z", kPubVenue, {3}, -1}});
}

MatchFunction PublicationMatch() {
  return MatchFunction(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
}

TEST(MrsnErTest, FindsDuplicates) {
  PublicationConfig gen;
  gen.num_entities = 2000;
  gen.seed = 150;
  const LabeledDataset data = GeneratePublications(gen);
  MrsnOptions options;
  options.cluster = TestCluster();
  const MrsnEr mrsn(PublicationBlocking(), PublicationMatch(), options);
  const ErRunResult result = mrsn.Run(data.dataset);
  const RecallCurve curve = RecallCurve::FromEvents(result.events, data.truth);
  EXPECT_GT(curve.final_recall(), 0.7);
  EXPECT_GT(result.comparisons, 0);
}

// The defining property of RepSN's replication: the parallel run covers the
// same pair set as a single global sliding window — partition boundaries
// never lose pairs.
TEST(MrsnErTest, MatchesGlobalSlidingWindow) {
  PublicationConfig gen;
  gen.num_entities = 800;
  gen.seed = 151;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig blocking({{"X", kPubTitle, {2}, -1}});  // single pass
  const MatchFunction match = PublicationMatch();
  const int w = 10;

  MrsnOptions parallel_options;
  parallel_options.cluster = TestCluster();  // 4 reduce tasks
  parallel_options.window = w;
  const ErRunResult parallel =
      MrsnEr(blocking, match, parallel_options).Run(data.dataset);

  MrsnOptions serial_options;
  serial_options.cluster = TestCluster();
  serial_options.num_reduce_tasks = 1;  // one global window
  serial_options.window = w;
  const ErRunResult serial =
      MrsnEr(blocking, match, serial_options).Run(data.dataset);

  EXPECT_EQ(parallel.duplicates, serial.duplicates);
  // Replication causes some extra skips but no duplicate comparisons of
  // owned pairs: totals stay close (replica-replica pairs are skipped).
  EXPECT_EQ(parallel.comparisons, serial.comparisons);
}

TEST(MrsnErTest, MorePassesFindMore) {
  PublicationConfig gen;
  gen.num_entities = 1500;
  gen.seed = 152;
  const LabeledDataset data = GeneratePublications(gen);
  const MatchFunction match = PublicationMatch();
  MrsnOptions options;
  options.cluster = TestCluster();

  const BlockingConfig one_pass({{"X", kPubTitle, {2}, -1}});
  const BlockingConfig three_passes = PublicationBlocking();
  const ErRunResult single = MrsnEr(one_pass, match, options).Run(data.dataset);
  const ErRunResult multi =
      MrsnEr(three_passes, match, options).Run(data.dataset);
  EXPECT_GT(multi.duplicates.size(), single.duplicates.size());
}

TEST(MrsnErTest, Deterministic) {
  PublicationConfig gen;
  gen.num_entities = 1000;
  gen.seed = 153;
  const LabeledDataset data = GeneratePublications(gen);
  MrsnOptions options;
  options.cluster = TestCluster();
  const MrsnEr mrsn(PublicationBlocking(), PublicationMatch(), options);
  const ErRunResult a = mrsn.Run(data.dataset);
  const ErRunResult b = mrsn.Run(data.dataset);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(MrsnErTest, ReplicasAreCounted) {
  PublicationConfig gen;
  gen.num_entities = 1000;
  gen.seed = 154;
  const LabeledDataset data = GeneratePublications(gen);
  MrsnOptions options;
  options.cluster = TestCluster();
  const MrsnEr mrsn(PublicationBlocking(), PublicationMatch(), options);
  const ErRunResult result = mrsn.Run(data.dataset);
  // (window - 1) replicas per boundary per pass: 3 passes * 3 boundaries.
  EXPECT_EQ(result.counters.Get("map.replicas"), 3 * 3 * (15 - 1));
}

}  // namespace
}  // namespace progres

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "estimate/prob_model.h"

namespace progres {
namespace {

BlockingConfig PublicationBlocking() {
  return BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                         {"Y", kPubAbstract, {3, 5}, -1},
                         {"Z", kPubVenue, {3, 5}, -1}});
}

TEST(ProbabilityModelTest, BucketBoundaries) {
  // fraction 1e-7 -> bucket 0; 1.0 -> last bucket.
  EXPECT_EQ(ProbabilityModel::BucketOf(1, 10000000), 0);
  EXPECT_EQ(ProbabilityModel::BucketOf(10, 10), ProbabilityModel::num_buckets() - 1);
  // Monotone: larger fractions never land in smaller buckets.
  int prev = 0;
  for (int64_t size : {1LL, 10LL, 100LL, 1000LL, 10000LL, 100000LL}) {
    const int bucket = ProbabilityModel::BucketOf(size, 100000);
    EXPECT_GE(bucket, prev);
    prev = bucket;
  }
}

TEST(ProbabilityModelTest, UntrainedFallsBackToDefault) {
  PublicationConfig gen;
  gen.num_entities = 300;
  gen.duplicate_fraction = 0.0;  // no duplicates at all
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config = PublicationBlocking();
  const ProbabilityModel model =
      ProbabilityModel::Train(data.dataset, data.truth, config);
  // Every observed bucket has probability 0; probabilities must be finite
  // and in [0, 1].
  const double p = model.Probability(0, 1, 50, 300);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(ProbabilityModelTest, SmallBlocksHaveHigherProbability) {
  PublicationConfig gen;
  gen.num_entities = 8000;
  gen.seed = 21;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config = PublicationBlocking();
  const ProbabilityModel model =
      ProbabilityModel::Train(data.dataset, data.truth, config);

  // Deep (small) title blocks concentrate duplicates far more than the big
  // level-1 prefix blocks (the observation of Sec. VI-A4).
  const double p_small = model.Probability(0, 3, 4, data.dataset.size());
  const double p_large = model.Probability(0, 1, 2000, data.dataset.size());
  EXPECT_GT(p_small, p_large);
  EXPECT_GT(p_small, 0.0);
}

TEST(ProbabilityModelTest, ProbabilitiesAreValid) {
  PublicationConfig gen;
  gen.num_entities = 3000;
  gen.seed = 22;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config = PublicationBlocking();
  const ProbabilityModel model =
      ProbabilityModel::Train(data.dataset, data.truth, config);
  for (int f = 0; f < config.num_families(); ++f) {
    for (int level = 1; level <= config.family(f).levels(); ++level) {
      for (int64_t size : {2LL, 8LL, 64LL, 512LL, 4096LL}) {
        const double p = model.Probability(f, level, size, data.dataset.size());
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
      }
    }
  }
}

TEST(ProbabilityModelTest, UnknownFamilyUsesGlobalFallback) {
  PublicationConfig gen;
  gen.num_entities = 1000;
  const LabeledDataset data = GeneratePublications(gen);
  const BlockingConfig config = PublicationBlocking();
  const ProbabilityModel model =
      ProbabilityModel::Train(data.dataset, data.truth, config);
  const double p = model.Probability(99, 7, 10, data.dataset.size());
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace progres

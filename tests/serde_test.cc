#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mapreduce/serde.h"

namespace progres {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  const uint64_t values[] = {0,
                             1,
                             0x7f,
                             0x80,
                             0x3fff,
                             0x4000,
                             1234567890,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t value : values) {
    std::string buffer;
    PutVarint64(value, &buffer);
    EXPECT_EQ(static_cast<int>(buffer.size()), VarintSize(value));
    size_t offset = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(offset, buffer.size());
  }
}

TEST(VarintTest, RandomRoundTrip) {
  Rng rng(160);
  std::string buffer;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t value = rng.NextU64() >> rng.UniformU64(64);
    values.push_back(value);
    PutVarint64(value, &buffer);
  }
  size_t offset = 0;
  for (uint64_t expected : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded));
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buffer;
  PutVarint64(1234567890123ULL, &buffer);
  buffer.pop_back();
  size_t offset = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(buffer, &offset, &decoded));
}

TEST(VarintTest, TenByteBoundary) {
  // The maximum uint64 needs the full ten wire bytes; the ninth byte must
  // still set its continuation bit.
  std::string buffer;
  PutVarint64(std::numeric_limits<uint64_t>::max(), &buffer);
  ASSERT_EQ(buffer.size(), 10u);
  EXPECT_EQ(VarintSize(std::numeric_limits<uint64_t>::max()), 10);
  EXPECT_NE(buffer[8] & 0x80, 0);
  EXPECT_EQ(buffer[9], '\1');
  size_t offset = 0;
  uint64_t decoded = 0;
  ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded));
  EXPECT_EQ(decoded, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(offset, 10u);
}

TEST(VarintTest, OverlongTenthByteRejected) {
  // A tenth byte can only contribute the 64th bit (0 or 1). Any other
  // payload would overflow uint64 and must be rejected, not wrapped.
  for (int tenth : {0x02, 0x40, 0x7e, 0x7f}) {
    std::string buffer(9, '\x80');
    buffer.push_back(static_cast<char>(tenth));
    size_t offset = 0;
    uint64_t decoded = 0;
    EXPECT_FALSE(GetVarint64(buffer, &offset, &decoded))
        << "tenth byte " << tenth;
  }
  // The two legal tenth bytes still decode.
  for (int tenth : {0x00, 0x01}) {
    std::string buffer(9, '\x80');
    buffer.push_back(static_cast<char>(tenth));
    size_t offset = 0;
    uint64_t decoded = 0;
    EXPECT_TRUE(GetVarint64(buffer, &offset, &decoded))
        << "tenth byte " << tenth;
  }
}

TEST(VarintTest, UnterminatedInputFails) {
  // Ten continuation bytes and no terminator: the decoder must stop with
  // an error rather than read past the varint's maximum width.
  const std::string buffer(10, '\x80');
  size_t offset = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(buffer, &offset, &decoded));
}

TEST(ZigZagTest, RoundTrip) {
  const int64_t values[] = {0, -1, 1, -2, 2, 1000000, -1000000,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t value : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(value)), value);
  }
  // Small magnitudes stay small on the wire.
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
}

TEST(StringTest, RoundTrip) {
  std::string buffer;
  PutString("hello", &buffer);
  PutString("", &buffer);
  PutString(std::string(1000, 'x'), &buffer);
  size_t offset = 0;
  std::string value;
  ASSERT_TRUE(GetString(buffer, &offset, &value));
  EXPECT_EQ(value, "hello");
  ASSERT_TRUE(GetString(buffer, &offset, &value));
  EXPECT_EQ(value, "");
  ASSERT_TRUE(GetString(buffer, &offset, &value));
  EXPECT_EQ(value, std::string(1000, 'x'));
  EXPECT_EQ(offset, buffer.size());
}

TEST(StringTest, EmbeddedSeparatorsSurvive) {
  std::string payload = "a\tb\nc";
  payload.push_back('\0');
  payload += "d";
  std::string buffer;
  PutString(payload, &buffer);
  size_t offset = 0;
  std::string value;
  ASSERT_TRUE(GetString(buffer, &offset, &value));
  EXPECT_EQ(value, payload);
}

TEST(StringTest, TruncatedPayloadFails) {
  std::string buffer;
  PutString("hello world", &buffer);
  buffer.resize(buffer.size() - 3);
  size_t offset = 0;
  std::string value;
  EXPECT_FALSE(GetString(buffer, &offset, &value));
}

TEST(StringTest, HugeClaimedLengthFailsCleanly) {
  // A corrupt length prefix claiming nearly 2^64 bytes must fail without
  // overflowing the offset arithmetic or attempting the allocation.
  std::string buffer;
  PutVarint64(std::numeric_limits<uint64_t>::max() - 1, &buffer);
  buffer += "tiny";
  size_t offset = 0;
  std::string value;
  EXPECT_FALSE(GetString(buffer, &offset, &value));
}

TEST(StringTest, MissingLengthPrefixFails) {
  size_t offset = 0;
  std::string value;
  EXPECT_FALSE(GetString("", &offset, &value));
}

// ---- KvCodec: the shuffle data plane's per-type wire format ----

TEST(KvCodecTest, IntegralRoundTripIncludingNegatives) {
  // Integral keys ride as the two's-complement bit pattern in a varint;
  // negatives round-trip through the uint64 cast unchanged.
  const int64_t values[] = {0, 1, -1, 1234567890, -1234567890,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  std::string buffer;
  for (int64_t value : values) KvCodec<int64_t>::Encode(value, &buffer);
  size_t offset = 0;
  for (int64_t expected : values) {
    int64_t decoded = 0;
    ASSERT_TRUE(KvCodec<int64_t>::Decode(buffer, &offset, &decoded));
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(KvCodecTest, BoolAndStringRoundTrip) {
  const std::string payload("key with \0 inside", 17);
  std::string buffer;
  KvCodec<bool>::Encode(true, &buffer);
  KvCodec<std::string>::Encode(payload, &buffer);
  KvCodec<bool>::Encode(false, &buffer);
  size_t offset = 0;
  bool flag = false;
  std::string text;
  ASSERT_TRUE(KvCodec<bool>::Decode(buffer, &offset, &flag));
  EXPECT_TRUE(flag);
  ASSERT_TRUE(KvCodec<std::string>::Decode(buffer, &offset, &text));
  EXPECT_EQ(text, payload);
  ASSERT_TRUE(KvCodec<bool>::Decode(buffer, &offset, &flag));
  EXPECT_FALSE(flag);
  EXPECT_EQ(offset, buffer.size());
}

TEST(KvCodecTest, RandomKvStreamRoundTrip) {
  // Fuzz the exact access pattern of the encoded shuffle plane: a mixed
  // stream of (int key, string value) records appended back to back, then
  // decoded sequentially. Every record must come back verbatim and every
  // truncation of the stream must fail rather than misparse.
  Rng rng(161);
  std::vector<std::pair<int64_t, std::string>> records;
  std::string buffer;
  for (int i = 0; i < 500; ++i) {
    const int64_t key = static_cast<int64_t>(rng.NextU64());
    std::string value(rng.UniformU64(40), '\0');
    for (char& c : value) c = static_cast<char>(rng.UniformU64(256));
    KvCodec<int64_t>::Encode(key, &buffer);
    KvCodec<std::string>::Encode(value, &buffer);
    records.emplace_back(key, std::move(value));
  }
  // A final record of known width (10-byte key varint + 12-byte string) so
  // the truncation sweep below always cuts strictly inside it.
  KvCodec<int64_t>::Encode(-1, &buffer);
  KvCodec<std::string>::Encode("tail-record", &buffer);
  records.emplace_back(-1, "tail-record");
  size_t offset = 0;
  for (const auto& [key, value] : records) {
    int64_t decoded_key = 0;
    std::string decoded_value;
    ASSERT_TRUE(KvCodec<int64_t>::Decode(buffer, &offset, &decoded_key));
    ASSERT_TRUE(
        KvCodec<std::string>::Decode(buffer, &offset, &decoded_value));
    EXPECT_EQ(decoded_key, key);
    EXPECT_EQ(decoded_value, value);
  }
  EXPECT_EQ(offset, buffer.size());

  // Chopping the stream anywhere inside the final record must surface as a
  // decode error, never as a silent short read.
  for (size_t cut = offset - 1; cut > offset - 8; --cut) {
    const std::string_view clipped(buffer.data(), cut);
    size_t pos = 0;
    bool ok = true;
    while (ok && pos < clipped.size()) {
      int64_t k = 0;
      std::string v;
      ok = KvCodec<int64_t>::Decode(clipped, &pos, &k) &&
           KvCodec<std::string>::Decode(clipped, &pos, &v);
    }
    EXPECT_FALSE(ok) << "cut at " << cut;
  }
}

// ---- FNV-1a: the default partitioner's hash ----

TEST(Fnv1aTest, KnownVectors) {
  // Reference values for the 64-bit FNV-1a parameters; pinning them pins
  // the default partition assignment across platforms and builds.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1aTest, ChainingMatchesOneShot) {
  const std::string data = "partition key material";
  const uint64_t whole = Fnv1a64(data);
  for (size_t cut : {size_t{0}, size_t{1}, size_t{7}, data.size()}) {
    EXPECT_EQ(Fnv1a64(data.substr(cut), Fnv1a64(data.substr(0, cut))), whole)
        << "cut at " << cut;
  }
}

TEST(Crc32Test, KnownVectors) {
  // The CRC-32/IEEE check value (reflected 0xEDB88320 polynomial).
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xe8b7be43u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data);
  for (size_t cut : {size_t{0}, size_t{1}, size_t{10}, data.size()}) {
    const uint32_t chained =
        Crc32(data.substr(cut), Crc32(data.substr(0, cut)));
    EXPECT_EQ(chained, whole) << "cut at " << cut;
  }
}

TEST(Crc32Test, SingleBitFlipChangesTheChecksum) {
  std::string data = "partition payload";
  const uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1;
    EXPECT_NE(Crc32(data), clean) << "flip at " << i;
    data[i] ^= 1;
  }
}

}  // namespace
}  // namespace progres

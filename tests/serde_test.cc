#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mapreduce/serde.h"

namespace progres {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  const uint64_t values[] = {0,
                             1,
                             0x7f,
                             0x80,
                             0x3fff,
                             0x4000,
                             1234567890,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t value : values) {
    std::string buffer;
    PutVarint64(value, &buffer);
    EXPECT_EQ(static_cast<int>(buffer.size()), VarintSize(value));
    size_t offset = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(offset, buffer.size());
  }
}

TEST(VarintTest, RandomRoundTrip) {
  Rng rng(160);
  std::string buffer;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t value = rng.NextU64() >> rng.UniformU64(64);
    values.push_back(value);
    PutVarint64(value, &buffer);
  }
  size_t offset = 0;
  for (uint64_t expected : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded));
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buffer;
  PutVarint64(1234567890123ULL, &buffer);
  buffer.pop_back();
  size_t offset = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(buffer, &offset, &decoded));
}

TEST(ZigZagTest, RoundTrip) {
  const int64_t values[] = {0, -1, 1, -2, 2, 1000000, -1000000,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t value : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(value)), value);
  }
  // Small magnitudes stay small on the wire.
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
}

TEST(StringTest, RoundTrip) {
  std::string buffer;
  PutString("hello", &buffer);
  PutString("", &buffer);
  PutString(std::string(1000, 'x'), &buffer);
  size_t offset = 0;
  std::string value;
  ASSERT_TRUE(GetString(buffer, &offset, &value));
  EXPECT_EQ(value, "hello");
  ASSERT_TRUE(GetString(buffer, &offset, &value));
  EXPECT_EQ(value, "");
  ASSERT_TRUE(GetString(buffer, &offset, &value));
  EXPECT_EQ(value, std::string(1000, 'x'));
  EXPECT_EQ(offset, buffer.size());
}

TEST(StringTest, EmbeddedSeparatorsSurvive) {
  std::string payload = "a\tb\nc";
  payload.push_back('\0');
  payload += "d";
  std::string buffer;
  PutString(payload, &buffer);
  size_t offset = 0;
  std::string value;
  ASSERT_TRUE(GetString(buffer, &offset, &value));
  EXPECT_EQ(value, payload);
}

TEST(StringTest, TruncatedPayloadFails) {
  std::string buffer;
  PutString("hello world", &buffer);
  buffer.resize(buffer.size() - 3);
  size_t offset = 0;
  std::string value;
  EXPECT_FALSE(GetString(buffer, &offset, &value));
}

TEST(Crc32Test, KnownVectors) {
  // The CRC-32/IEEE check value (reflected 0xEDB88320 polynomial).
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xe8b7be43u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data);
  for (size_t cut : {size_t{0}, size_t{1}, size_t{10}, data.size()}) {
    const uint32_t chained =
        Crc32(data.substr(cut), Crc32(data.substr(0, cut)));
    EXPECT_EQ(chained, whole) << "cut at " << cut;
  }
}

TEST(Crc32Test, SingleBitFlipChangesTheChecksum) {
  std::string data = "partition payload";
  const uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1;
    EXPECT_NE(Crc32(data), clean) << "flip at " << i;
    data[i] ^= 1;
  }
}

}  // namespace
}  // namespace progres

// Out-of-core shuffle suite: the memory-budgeted spill path must be a pure
// implementation detail. Forcing every map task to spill must leave a job's
// outputs, user counters, and simulated timeline byte-identical to the
// all-in-memory run on both backends; the "mr.spill.*" counters must
// reconcile exactly with the spill-write and spill-merge trace spans; spill
// run files must be cleaned up; and an unusable budget must fail the job
// with a labelled error instead of wedging it.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/cluster.h"
#include "mapreduce/executor.h"
#include "mapreduce/job.h"
#include "mapreduce/serde.h"
#include "mapreduce/trace.h"
#include "mr_test_util.h"

namespace progres {
namespace {

using testing_util::CountersMinusMr;

ClusterConfig TestCluster(ExecutionBackend backend) {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.backend = backend;
  return cluster;
}

// A budget small enough that every map task spills on this suite's inputs:
// one byte of headroom, 4 KiB blocks (the runtime's floor).
ShuffleBudget TinyBudget() {
  ShuffleBudget budget;
  budget.max_bytes = 1;
  budget.block_bytes = 4096;
  return budget;
}

// The suite's reference job: word count over synthetic lines, sized so a
// tiny budget forces several spill runs per map task.
std::vector<std::string> WordLines(int lines) {
  std::vector<std::string> input;
  input.reserve(static_cast<size_t>(lines));
  for (int i = 0; i < lines; ++i) {
    std::string line;
    for (int w = 0; w < 8; ++w) {
      if (w > 0) line.push_back(' ');
      line += "word" + std::to_string((i * 8 + w * 13) % 50);
    }
    input.push_back(std::move(line));
  }
  return input;
}

using WordJob = MapReduceJob<std::string, std::string, int64_t>;

void WordMap(const std::string& line, WordJob::MapContext* ctx) {
  size_t start = 0;
  while (start < line.size()) {
    size_t end = line.find(' ', start);
    if (end == std::string::npos) end = line.size();
    ctx->Emit(line.substr(start, end - start), 1);
    start = end + 1;
  }
}

void WordReduce(const std::string& key, std::vector<int64_t>* values,
                WordJob::ReduceContext* ctx) {
  int64_t sum = 0;
  for (int64_t v : *values) sum += v;
  ctx->Emit(key, sum);
}

WordJob::Result RunWordCount(const ClusterConfig& cluster,
                             bool with_combiner = false, int lines = 400) {
  WordJob job(4, 3);
  if (with_combiner) {
    job.set_combiner(
        [](const std::string& key, std::vector<int64_t>* values,
           std::vector<std::pair<std::string, int64_t>>* out) {
          int64_t sum = 0;
          for (int64_t v : *values) sum += v;
          out->emplace_back(key, sum);
        });
  }
  return job.Run(WordLines(lines), WordMap, WordReduce, cluster);
}

// Canonical text form of everything a run reports except the runtime's own
// spill bookkeeping (which legitimately differs between the two runs).
std::string DumpRun(const WordJob::Result& result) {
  std::string out;
  out += "failed=" + std::to_string(result.failed ? 1 : 0) + "\n";
  out += "end=" + std::to_string(result.timing.end) + "\n";
  for (const auto& [k, v] : result.outputs) {
    out += k + "=" + std::to_string(v) + "\n";
  }
  for (const auto& [name, value] : CountersMinusMr(result.counters)) {
    out += "counter " + name + "=" + std::to_string(value) + "\n";
  }
  return out;
}

// ------------------------------------------------- output equivalence

TEST(SpillTest, ForcedSpillOutputsByteIdenticalSimulated) {
  ClusterConfig memory_cluster = TestCluster(ExecutionBackend::kSimulated);
  const WordJob::Result in_memory = RunWordCount(memory_cluster);
  ASSERT_FALSE(in_memory.failed) << in_memory.error;
  EXPECT_EQ(in_memory.counters.Get("mr.spill.runs"), 0);

  ClusterConfig spill_cluster = TestCluster(ExecutionBackend::kSimulated);
  spill_cluster.shuffle_budget = TinyBudget();
  const WordJob::Result spilled = RunWordCount(spill_cluster);
  ASSERT_FALSE(spilled.failed) << spilled.error;
  EXPECT_GT(spilled.counters.Get("mr.spill.runs"), 0);
  EXPECT_GT(spilled.counters.Get("mr.spill.records"), 0);
  EXPECT_GT(spilled.counters.Get("mr.spill.bytes"), 0);
  EXPECT_GT(spilled.counters.Get("mr.spill.merge_passes"), 0);

  EXPECT_EQ(DumpRun(in_memory), DumpRun(spilled));
}

TEST(SpillTest, ForcedSpillOutputsByteIdenticalThreaded) {
  ClusterConfig memory_cluster = TestCluster(ExecutionBackend::kThreaded);
  const WordJob::Result in_memory = RunWordCount(memory_cluster);
  ASSERT_FALSE(in_memory.failed) << in_memory.error;

  ClusterConfig spill_cluster = TestCluster(ExecutionBackend::kThreaded);
  spill_cluster.shuffle_budget = TinyBudget();
  const WordJob::Result spilled = RunWordCount(spill_cluster);
  ASSERT_FALSE(spilled.failed) << spilled.error;
  EXPECT_GT(spilled.counters.Get("mr.spill.runs"), 0);

  EXPECT_EQ(DumpRun(in_memory), DumpRun(spilled));
}

TEST(SpillTest, CombinerAppliesToSpillRunsAndMemoryTail) {
  // The combiner collapses duplicate keys inside each spill run, so the
  // combined spilled run must move strictly fewer records than the
  // combiner-free one — while producing identical reduce outputs.
  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget = TinyBudget();
  const WordJob::Result plain = RunWordCount(cluster, /*with_combiner=*/false);
  const WordJob::Result combined =
      RunWordCount(cluster, /*with_combiner=*/true);
  ASSERT_FALSE(plain.failed) << plain.error;
  ASSERT_FALSE(combined.failed) << combined.error;
  EXPECT_GT(combined.counters.Get("mr.spill.runs"), 0);
  EXPECT_LT(combined.counters.Get("mr.spill.records"),
            plain.counters.Get("mr.spill.records"));

  std::map<std::string, int64_t> plain_counts(plain.outputs.begin(),
                                              plain.outputs.end());
  std::map<std::string, int64_t> combined_counts(combined.outputs.begin(),
                                                 combined.outputs.end());
  EXPECT_EQ(plain_counts, combined_counts);

  // An in-memory combined run is the reference the spilled one must match.
  const WordJob::Result reference = RunWordCount(
      TestCluster(ExecutionBackend::kSimulated), /*with_combiner=*/true);
  ASSERT_FALSE(reference.failed) << reference.error;
  EXPECT_EQ(DumpRun(reference), DumpRun(combined));
}

// ------------------------------------------------- counter/span ledger

struct SpillSpanTally {
  int64_t writes = 0;
  int64_t write_records = 0;
  int64_t write_bytes = 0;
  int64_t merges = 0;
};

SpillSpanTally TallySpillSpans(const std::vector<TraceSpan>& spans) {
  SpillSpanTally tally;
  for (const TraceSpan& span : spans) {
    if (span.kind == SpanKind::kSpillWrite) {
      ++tally.writes;
      EXPECT_GE(span.records_in, 0);
      EXPECT_GE(span.bytes, 0);
      tally.write_records += span.records_in;
      tally.write_bytes += span.bytes;
    } else if (span.kind == SpanKind::kSpillMerge) {
      ++tally.merges;
      EXPECT_GT(span.records_in, 0);
    }
  }
  return tally;
}

void CheckSpillLedger(ExecutionBackend backend) {
  TraceRecorder recorder;
  ClusterConfig cluster = TestCluster(backend);
  cluster.shuffle_budget = TinyBudget();
  cluster.trace = &recorder;
  const WordJob::Result result = RunWordCount(cluster);
  ASSERT_FALSE(result.failed) << result.error;

  const SpillSpanTally tally = TallySpillSpans(recorder.spans());
  EXPECT_EQ(tally.writes, result.counters.Get("mr.spill.runs"));
  EXPECT_EQ(tally.write_records, result.counters.Get("mr.spill.records"));
  EXPECT_EQ(tally.write_bytes, result.counters.Get("mr.spill.bytes"));
  EXPECT_EQ(tally.merges, result.counters.Get("mr.spill.merge_passes"));
  EXPECT_GT(tally.writes, 0);
}

TEST(SpillTest, CountersReconcileWithSpansSimulated) {
  CheckSpillLedger(ExecutionBackend::kSimulated);
}

TEST(SpillTest, CountersReconcileWithSpansThreaded) {
  CheckSpillLedger(ExecutionBackend::kThreaded);
}

TEST(SpillTest, NoSpillSpansWithoutBudget) {
  TraceRecorder recorder;
  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.trace = &recorder;
  const WordJob::Result result = RunWordCount(cluster);
  ASSERT_FALSE(result.failed) << result.error;
  const SpillSpanTally tally = TallySpillSpans(recorder.spans());
  EXPECT_EQ(tally.writes, 0);
  EXPECT_EQ(tally.merges, 0);
  EXPECT_EQ(result.counters.Get("mr.spill.merge_passes"), 0);
}

// ------------------------------------------------- spill run hygiene

TEST(SpillTest, SpillRunFilesAreDeletedAfterTheJob) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "progres_spill_test_dir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget = TinyBudget();
  cluster.shuffle_budget.spill_dir = dir.string();
  const WordJob::Result result = RunWordCount(cluster);
  ASSERT_FALSE(result.failed) << result.error;
  EXPECT_GT(result.counters.Get("mr.spill.runs"), 0);

  int leftovers = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++leftovers;
    ADD_FAILURE() << "leftover spill file: " << entry.path();
  }
  EXPECT_EQ(leftovers, 0);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- budget failure modes

TEST(SpillTest, UnusableSpillDirFailsTheJobWithALabel) {
  // Point the spill dir at a regular file: ResolveSpillDir cannot create or
  // write into it, so submission must fail cleanly before any map work.
  const std::filesystem::path blocker =
      std::filesystem::temp_directory_path() / "progres_spill_test_blocker";
  std::filesystem::remove_all(blocker);
  { std::ofstream out(blocker); out << "x"; }

  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget = TinyBudget();
  cluster.shuffle_budget.spill_dir = blocker.string();
  const WordJob::Result result = RunWordCount(cluster);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find("shuffle budget unusable"), std::string::npos)
      << result.error;
  std::filesystem::remove(blocker);
}

TEST(SpillTest, NegativeBudgetIsAConfigError) {
  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget.max_bytes = -1;
  const WordJob::Result result = RunWordCount(cluster);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find("shuffle_budget"), std::string::npos)
      << result.error;
}

TEST(SpillTest, ZeroBlockBytesIsAConfigError) {
  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget.max_bytes = 1 << 20;
  cluster.shuffle_budget.block_bytes = 0;
  const WordJob::Result result = RunWordCount(cluster);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find("block_bytes"), std::string::npos)
      << result.error;
}

// ------------------------------------------------- large-budget no-op

TEST(SpillTest, GenerousBudgetNeverSpills) {
  ClusterConfig cluster = TestCluster(ExecutionBackend::kSimulated);
  cluster.shuffle_budget.max_bytes = int64_t{1} << 30;
  const WordJob::Result result = RunWordCount(cluster);
  ASSERT_FALSE(result.failed) << result.error;
  EXPECT_EQ(result.counters.Get("mr.spill.runs"), 0);
  EXPECT_EQ(result.counters.Get("mr.spill.merge_passes"), 0);
}

}  // namespace
}  // namespace progres

// Job-supervision tests (mapreduce/supervisor.h): the simulated deadline is
// enforced deterministically on both backends — hard failure without
// allow_degraded, checkpoint-or-cancel cuts with it; permanently failing
// tasks are quarantined into best-effort finalization; the retry-budget
// ledger caps attempts deterministically and a sufficient budget changes
// nothing; the disk breaker collapses per-task ENOSPC discovery into one
// failover; every "mr.supervisor.*" counter reconciles 1:1 against the
// kDeadlineCancel / kTaskQuarantine / kBreakerTrip trace spans; and with
// degradation disabled every hard-failure path keeps its labelled error.

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "mapreduce/fault.h"
#include "mapreduce/job.h"
#include "mapreduce/supervisor.h"
#include "mapreduce/trace.h"
#include "mechanism/sorted_neighbor.h"
#include "mr_test_util.h"

namespace progres {
namespace {

using testing_util::CountersMinusMr;

constexpr int kMapTasks = 4;
constexpr int kReduceTasks = 3;

ClusterConfig TestCluster(FaultConfig fault = FaultConfig()) {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.seconds_per_cost_unit = 1.0;
  cluster.fault = std::move(fault);
  return cluster;
}

using Job = MapReduceJob<int, int, int>;

Job::Result RunHookedJob(const ClusterConfig& cluster) {
  std::vector<int> input;
  for (int i = 0; i < 229; ++i) input.push_back(i * 37 % 101);

  Job job(kMapTasks, kReduceTasks);
  job.set_map_cost_per_record(0.5);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  return job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->clock().Charge(0.25);
        ctx->Emit(record % 11, record);
      },
      [](const int& key, std::vector<int>* values, Job::ReduceContext* ctx) {
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->clock().Charge(static_cast<double>(values->size()));
        ctx->Emit(key, sum);
      },
      cluster);
}

// A deadline strictly inside the reduce phase of `baseline`.
double MidReduceDeadline(const Job::Result& baseline) {
  return baseline.timing.map_end +
         (baseline.timing.end - baseline.timing.map_end) * 0.5;
}

struct SpanTally {
  int64_t deadline_cancels = 0;
  int64_t quarantines = 0;
  int64_t breaker_trips = 0;
};

SpanTally TallySupervisorSpans(const TraceRecorder& trace) {
  SpanTally tally;
  for (const TraceSpan& span : trace.spans()) {
    if (span.kind == SpanKind::kDeadlineCancel) ++tally.deadline_cancels;
    if (span.kind == SpanKind::kTaskQuarantine) ++tally.quarantines;
    if (span.kind == SpanKind::kBreakerTrip) ++tally.breaker_trips;
  }
  return tally;
}

// ---- Deadline enforcement ----

TEST(SupervisorTest, HardDeadlineFailureIsLabelled) {
  const Job::Result baseline = RunHookedJob(TestCluster());
  ASSERT_FALSE(baseline.failed) << baseline.error;

  ClusterConfig cluster = TestCluster();
  cluster.control.deadline_seconds = MidReduceDeadline(baseline);
  const Job::Result run = RunHookedJob(cluster);
  EXPECT_TRUE(run.failed);
  EXPECT_NE(run.error.find("job deadline exceeded"), std::string::npos)
      << run.error;
  EXPECT_TRUE(run.outputs.empty());
  // A hard deadline failure reports no degradation — the job failed.
  EXPECT_FALSE(run.completeness.degraded);
}

TEST(SupervisorTest, DeadlineAtOrPastCompletionChangesNothing) {
  const Job::Result baseline = RunHookedJob(TestCluster());
  ClusterConfig cluster = TestCluster();
  cluster.control.deadline_seconds = baseline.timing.end;
  cluster.control.allow_degraded = true;
  const Job::Result run = RunHookedJob(cluster);
  ASSERT_FALSE(run.failed) << run.error;
  EXPECT_EQ(run.outputs, baseline.outputs);
  EXPECT_FALSE(run.completeness.degraded);
  EXPECT_DOUBLE_EQ(run.completeness.covered_fraction, 1.0);
}

TEST(SupervisorTest, DegradedDeadlineCancelsUncheckpointedTasks) {
  const Job::Result baseline = RunHookedJob(TestCluster());
  ClusterConfig cluster = TestCluster();
  const double deadline = MidReduceDeadline(baseline);
  cluster.control.deadline_seconds = deadline;
  cluster.control.allow_degraded = true;
  const Job::Result run = RunHookedJob(cluster);
  ASSERT_FALSE(run.failed) << run.error;

  // Some reduce task overran the deadline; without checkpoints its output
  // is cancelled outright.
  EXPECT_TRUE(run.completeness.degraded);
  EXPECT_LT(run.outputs.size(), baseline.outputs.size());
  EXPECT_DOUBLE_EQ(run.timing.end, deadline);
  EXPECT_GT(run.completeness.deadline_cancels, 0);
  EXPECT_LT(run.completeness.covered_fraction, 1.0);
  ASSERT_FALSE(run.completeness.tasks.empty());
  for (const TaskReport& task : run.completeness.tasks) {
    EXPECT_EQ(task.phase, TaskPhase::kReduce);
    EXPECT_EQ(task.kind, TaskOutcomeKind::kCancelled);
    EXPECT_EQ(task.records_covered, 0);
    EXPECT_GT(task.records_total, 0);
  }
  EXPECT_EQ(run.counters.Get("mr.supervisor.deadline_cancels"),
            run.completeness.deadline_cancels);

  // Deterministic: an identical configuration cuts identically.
  const Job::Result rerun = RunHookedJob(cluster);
  ASSERT_FALSE(rerun.failed) << rerun.error;
  EXPECT_EQ(rerun.outputs, run.outputs);
  EXPECT_EQ(rerun.completeness.ToString(), run.completeness.ToString());
}

TEST(SupervisorTest, DegradedDeadlineIdenticalAcrossBackends) {
  const Job::Result baseline = RunHookedJob(TestCluster());
  ClusterConfig cluster = TestCluster();
  cluster.control.deadline_seconds = MidReduceDeadline(baseline);
  cluster.control.allow_degraded = true;
  const Job::Result simulated = RunHookedJob(cluster);
  ASSERT_FALSE(simulated.failed) << simulated.error;
  ASSERT_TRUE(simulated.completeness.degraded);

  cluster.backend = ExecutionBackend::kThreaded;
  const Job::Result threaded = RunHookedJob(cluster);
  ASSERT_FALSE(threaded.failed) << threaded.error;
  EXPECT_EQ(threaded.outputs, simulated.outputs);
  EXPECT_EQ(threaded.completeness.ToString(),
            simulated.completeness.ToString());
  for (const char* name :
       {"mr.supervisor.deadline_cancels", "mr.supervisor.quarantined_tasks",
        "mr.supervisor.breaker_trips", "mr.supervisor.retries_denied"}) {
    EXPECT_EQ(threaded.counters.Get(name), simulated.counters.Get(name))
        << name;
  }
}

// ---- Task quarantine ----

TEST(SupervisorTest, DoomedReduceTaskQuarantinesIntoBestEffortSuccess) {
  const Job::Result baseline = RunHookedJob(TestCluster());

  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 2;
  fault.injected.push_back({TaskPhase::kReduce, 1, 0});
  fault.injected.push_back({TaskPhase::kReduce, 1, 1});

  // Negative path first: with degradation disabled the retry-exhaustion
  // error keeps its exact label.
  const Job::Result hard = RunHookedJob(TestCluster(fault));
  EXPECT_TRUE(hard.failed);
  EXPECT_EQ(hard.error, "reduce task 1 failed after 2 attempts");

  ClusterConfig cluster = TestCluster(fault);
  cluster.control.allow_degraded = true;
  TraceRecorder trace;
  cluster.trace = &trace;
  const Job::Result run = RunHookedJob(cluster);
  ASSERT_FALSE(run.failed) << run.error;
  EXPECT_TRUE(run.completeness.degraded);
  EXPECT_LT(run.outputs.size(), baseline.outputs.size());
  ASSERT_EQ(run.completeness.tasks.size(), 1u);
  EXPECT_EQ(run.completeness.tasks[0].phase, TaskPhase::kReduce);
  EXPECT_EQ(run.completeness.tasks[0].task, 1);
  EXPECT_EQ(run.completeness.tasks[0].kind, TaskOutcomeKind::kQuarantined);
  EXPECT_EQ(run.completeness.tasks[0].records_covered, 0);
  EXPECT_GT(run.completeness.tasks[0].records_total, 0);
  EXPECT_EQ(run.completeness.quarantined_tasks, 1);
  EXPECT_EQ(run.counters.Get("mr.supervisor.quarantined_tasks"), 1);

  const SpanTally tally = TallySupervisorSpans(trace);
  EXPECT_EQ(tally.quarantines, 1);
  EXPECT_EQ(tally.deadline_cancels, 0);
  EXPECT_EQ(tally.breaker_trips, 0);
}

TEST(SupervisorTest, DoomedMapTaskQuarantinesItsChunk) {
  const Job::Result baseline = RunHookedJob(TestCluster());

  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 2;
  fault.injected.push_back({TaskPhase::kMap, 2, 0});
  fault.injected.push_back({TaskPhase::kMap, 2, 1});

  const Job::Result hard = RunHookedJob(TestCluster(fault));
  EXPECT_TRUE(hard.failed);
  EXPECT_EQ(hard.error, "map task 2 failed after 2 attempts");

  ClusterConfig cluster = TestCluster(fault);
  cluster.control.allow_degraded = true;
  const Job::Result run = RunHookedJob(cluster);
  ASSERT_FALSE(run.failed) << run.error;
  EXPECT_TRUE(run.completeness.degraded);
  ASSERT_EQ(run.completeness.tasks.size(), 1u);
  EXPECT_EQ(run.completeness.tasks[0].phase, TaskPhase::kMap);
  EXPECT_EQ(run.completeness.tasks[0].task, 2);
  EXPECT_EQ(run.completeness.tasks[0].kind, TaskOutcomeKind::kQuarantined);
  // The quarantined map task's input chunk (229 records over 4 tasks).
  EXPECT_EQ(run.completeness.tasks[0].records_total, 57);
  EXPECT_EQ(run.completeness.tasks[0].records_covered, 0);
  // The dropped chunk changes downstream sums, but the job finalizes.
  EXPECT_FALSE(run.outputs.empty());
  EXPECT_NE(run.outputs, baseline.outputs);

  const Job::Result rerun = RunHookedJob(cluster);
  EXPECT_EQ(rerun.outputs, run.outputs);
}

// ---- Retry-budget ledger ----

TEST(SupervisorTest, LedgerDeniesRetriesDeterministically) {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 4;
  fault.injected.push_back({TaskPhase::kMap, 1, 0});
  fault.injected.push_back({TaskPhase::kMap, 1, 1});
  fault.injected.push_back({TaskPhase::kReduce, 0, 0});
  fault.injected.push_back({TaskPhase::kReduce, 0, 1});

  // Budget 2 funds map task 1's two planned retries (walked first) and
  // leaves nothing for reduce task 0, whose cap drops to one attempt.
  ClusterConfig cluster = TestCluster(fault);
  cluster.control.allow_degraded = true;
  cluster.control.fault_budget = 2;
  TraceRecorder trace;
  cluster.trace = &trace;
  const Job::Result run = RunHookedJob(cluster);
  ASSERT_FALSE(run.failed) << run.error;
  EXPECT_TRUE(run.completeness.degraded);
  ASSERT_EQ(run.completeness.tasks.size(), 1u);
  EXPECT_EQ(run.completeness.tasks[0].phase, TaskPhase::kReduce);
  EXPECT_EQ(run.completeness.tasks[0].task, 0);
  EXPECT_EQ(run.completeness.tasks[0].kind, TaskOutcomeKind::kQuarantined);
  EXPECT_EQ(run.completeness.retries_denied, 2);
  EXPECT_EQ(run.completeness.breaker_trips, 1);
  EXPECT_EQ(run.counters.Get("mr.supervisor.retries_denied"), 2);
  EXPECT_EQ(run.counters.Get("mr.supervisor.breaker_trips"), 1);
  // The funded map retries actually ran; the denied reduce retries did not.
  EXPECT_EQ(run.counters.Get("mr.supervisor.retry_spend.task"), 3);

  const SpanTally tally = TallySupervisorSpans(trace);
  EXPECT_EQ(tally.breaker_trips, 1);
  EXPECT_EQ(tally.quarantines, 1);
}

TEST(SupervisorTest, SufficientBudgetIsByteIdentical) {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 4;
  fault.injected.push_back({TaskPhase::kMap, 1, 0});
  fault.injected.push_back({TaskPhase::kMap, 1, 1});
  fault.injected.push_back({TaskPhase::kReduce, 0, 0});
  fault.injected.push_back({TaskPhase::kReduce, 0, 1});

  const Job::Result unsupervised = RunHookedJob(TestCluster(fault));
  ASSERT_FALSE(unsupervised.failed) << unsupervised.error;

  ClusterConfig cluster = TestCluster(fault);
  cluster.control.allow_degraded = true;
  cluster.control.fault_budget = 100;
  const Job::Result run = RunHookedJob(cluster);
  ASSERT_FALSE(run.failed) << run.error;
  EXPECT_FALSE(run.completeness.degraded);
  EXPECT_EQ(run.completeness.retries_denied, 0);
  EXPECT_EQ(run.outputs, unsupervised.outputs);
  EXPECT_EQ(CountersMinusMr(run.counters),
            CountersMinusMr(unsupervised.counters));
  EXPECT_DOUBLE_EQ(run.timing.end, unsupervised.timing.end);
}

// ---- Disk circuit breaker ----

TEST(SupervisorTest, DiskBreakerCollapsesEnospcDiscovery) {
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() / "progres_supervisor_spill";
  const std::filesystem::path primary = base / "primary";
  const std::filesystem::path fallback = base / "fallback";
  std::filesystem::create_directories(primary);
  std::filesystem::create_directories(fallback);

  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 4;
  fault.spill_enospc_prob = 1.0;  // every map task's primary dir is full

  ClusterConfig cluster = TestCluster(fault);
  cluster.shuffle_budget.max_bytes = 1;    // spill everything
  cluster.shuffle_budget.block_bytes = 16;  // ...in many tiny runs
  cluster.shuffle_budget.spill_dir = primary.string();
  cluster.shuffle_budget.fallback_spill_dir = fallback.string();

  const Job::Result unsupervised = RunHookedJob(cluster);
  ASSERT_FALSE(unsupervised.failed) << unsupervised.error;
  EXPECT_EQ(unsupervised.counters.Get("mr.disk.enospc"), kMapTasks);

  cluster.control.allow_degraded = true;
  TraceRecorder trace;
  cluster.trace = &trace;
  const Job::Result run = RunHookedJob(cluster);
  ASSERT_FALSE(run.failed) << run.error;
  // One global discovery instead of a per-task storm; identical output.
  EXPECT_EQ(run.counters.Get("mr.disk.enospc"), 1);
  EXPECT_EQ(run.outputs, unsupervised.outputs);
  EXPECT_FALSE(run.completeness.degraded);
  EXPECT_EQ(run.completeness.breaker_trips, 1);
  EXPECT_EQ(run.counters.Get("mr.supervisor.breaker_trips"), 1);
  EXPECT_EQ(TallySupervisorSpans(trace).breaker_trips, 1);
}

// ---- Negative paths: hard errors stay labelled without degradation ----

TEST(SupervisorTest, MachineLossInMapPhaseStaysFatalEvenDegraded) {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 4;
  fault.machine_failures = {{0, 0.1}, {1, 0.1}};  // the whole cluster dies

  const Job::Result hard = RunHookedJob(TestCluster(fault));
  EXPECT_TRUE(hard.failed);
  EXPECT_NE(hard.error.find("lost: no healthy machines remain"),
            std::string::npos)
      << hard.error;

  // Losing every machine leaves nothing to degrade to: map output is gone.
  ClusterConfig cluster = TestCluster(fault);
  cluster.control.allow_degraded = true;
  const Job::Result degraded = RunHookedJob(cluster);
  EXPECT_TRUE(degraded.failed);
  EXPECT_NE(degraded.error.find("lost: no healthy machines remain"),
            std::string::npos)
      << degraded.error;
}

TEST(SupervisorTest, StickySpillErrorPinnedWithoutDegradation) {
  const std::filesystem::path primary =
      std::filesystem::temp_directory_path() / "progres_supervisor_nofall";
  std::filesystem::create_directories(primary);

  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 4;
  fault.spill_enospc_prob = 1.0;

  ClusterConfig cluster = TestCluster(fault);
  cluster.shuffle_budget.max_bytes = 1;
  cluster.shuffle_budget.block_bytes = 16;
  cluster.shuffle_budget.spill_dir = primary.string();
  // No fallback dir: ENOSPC is a sticky, labelled failure.
  const Job::Result hard = RunHookedJob(cluster);
  EXPECT_TRUE(hard.failed);
  EXPECT_NE(hard.error.find("map task 0:"), std::string::npos) << hard.error;
  EXPECT_NE(hard.error.find("no fallback spill dir configured"),
            std::string::npos)
      << hard.error;

  // With degradation the unsalvageable map tasks quarantine instead and the
  // job finalizes (here: every chunk is lost, so coverage drops to zero).
  cluster.control.allow_degraded = true;
  const Job::Result degraded = RunHookedJob(cluster);
  ASSERT_FALSE(degraded.failed) << degraded.error;
  EXPECT_TRUE(degraded.completeness.degraded);
  EXPECT_EQ(degraded.completeness.tasks.size(),
            static_cast<size_t>(kMapTasks));
  EXPECT_DOUBLE_EQ(degraded.completeness.covered_fraction, 0.0);
  EXPECT_TRUE(degraded.outputs.empty());
}

// ---- End-to-end: deterministic degraded ER run on both backends ----

TEST(SupervisorTest, ProgressiveDeadlineCutIsDeterministicAcrossBackends) {
  PublicationConfig gen;
  gen.num_entities = 600;
  gen.seed = 31;
  const LabeledDataset data = GeneratePublications(gen);
  PublicationConfig train_gen;
  train_gen.num_entities = 200;
  train_gen.seed = 32;
  const LabeledDataset train = GeneratePublications(train_gen);
  const BlockingConfig blocking(
      {{"X", kPubTitle, {2, 4}, -1}, {"Y", kPubVenue, {3}, -1}});
  const MatchFunction match(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.7, 0},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.3, 0}},
      0.75);
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);
  const SortedNeighborMechanism sn;

  ProgressiveErOptions options;
  options.cluster.machines = 3;
  options.cluster.execution_threads = 4;
  options.cluster.seconds_per_cost_unit = 1e-3;
  options.alpha = 300.0;
  const ErRunResult clean =
      ProgressiveEr(blocking, match, sn, prob, options).Run(data.dataset);
  ASSERT_FALSE(clean.failed) << clean.error;
  ASSERT_FALSE(clean.duplicates.empty());

  options.cluster.control.deadline_seconds = clean.total_time * 0.6;
  options.cluster.control.allow_degraded = true;
  const ErRunResult degraded =
      ProgressiveEr(blocking, match, sn, prob, options).Run(data.dataset);
  ASSERT_FALSE(degraded.failed) << degraded.error;
  EXPECT_TRUE(degraded.completeness.degraded);
  EXPECT_GT(degraded.completeness.deadline_cancels, 0);
  EXPECT_LT(degraded.completeness.covered_fraction, 1.0);
  EXPECT_GT(degraded.completeness.covered_fraction, 0.0);

  // The degraded output is a subset of the clean run's pairs — alpha-cut
  // prefixes never invent pairs.
  EXPECT_FALSE(degraded.duplicates.empty());
  EXPECT_LT(degraded.duplicates.size(), clean.duplicates.size());
  for (const PairKey pair : degraded.duplicates) {
    EXPECT_TRUE(std::binary_search(clean.duplicates.begin(),
                                   clean.duplicates.end(), pair));
  }

  // Identical (seed, fault plan, deadline) => identical degraded pairs and
  // completeness report, on both backends.
  const ErRunResult rerun =
      ProgressiveEr(blocking, match, sn, prob, options).Run(data.dataset);
  ASSERT_FALSE(rerun.failed) << rerun.error;
  EXPECT_EQ(rerun.duplicates, degraded.duplicates);
  EXPECT_EQ(rerun.completeness.ToString(), degraded.completeness.ToString());

  options.cluster.backend = ExecutionBackend::kThreaded;
  const ErRunResult threaded =
      ProgressiveEr(blocking, match, sn, prob, options).Run(data.dataset);
  ASSERT_FALSE(threaded.failed) << threaded.error;
  EXPECT_EQ(threaded.duplicates, degraded.duplicates);
  EXPECT_EQ(threaded.completeness.ToString(),
            degraded.completeness.ToString());
  for (const char* name :
       {"mr.supervisor.deadline_cancels", "mr.supervisor.quarantined_tasks",
        "mr.supervisor.breaker_trips", "mr.supervisor.retries_denied"}) {
    EXPECT_EQ(threaded.counters.Get(name), degraded.counters.Get(name))
        << name;
  }
}

}  // namespace
}  // namespace progres

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mechanism/full_resolver.h"
#include "mechanism/psnm.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

// Entities with a single attribute; the attribute doubles as sort key and
// match value (exact match => duplicates are entities with equal values).
std::vector<Entity> MakeBlock(const std::vector<std::string>& values) {
  std::vector<Entity> entities;
  for (size_t i = 0; i < values.size(); ++i) {
    Entity e;
    e.id = static_cast<EntityId>(i);
    e.attributes = {values[i]};
    entities.push_back(std::move(e));
  }
  return entities;
}

std::vector<const Entity*> Pointers(const std::vector<Entity>& entities) {
  std::vector<const Entity*> out;
  for (const Entity& e : entities) out.push_back(&e);
  return out;
}

MatchFunction ExactMatch() {
  return MatchFunction({{0, AttributeSimilarity::kExact, 1.0, 0}}, 0.5);
}

struct RunResult {
  ResolveOutcome outcome;
  std::vector<PairKey> found;
  double cost = 0.0;
};

RunResult RunMechanism(const ProgressiveMechanism& mechanism,
                       const std::vector<Entity>& entities,
                       const MatchFunction& match, ResolveOptions options,
                       std::unordered_set<PairKey>* resolved = nullptr,
                       const std::function<bool(const Entity&, const Entity&)>*
                           should_resolve = nullptr) {
  RunResult run;
  CostClock clock;
  const std::vector<const Entity*> block = Pointers(entities);
  ResolveRequest request;
  request.block = &block;
  request.sort_attribute = 0;
  request.match = &match;
  request.options = options;
  request.clock = &clock;
  request.resolved = resolved;
  request.should_resolve = should_resolve;
  request.on_duplicate = [&run](EntityId a, EntityId b) {
    run.found.push_back(MakePairKey(a, b));
  };
  run.outcome = mechanism.Resolve(request);
  run.cost = clock.units();
  return run;
}

// ------------------------------------------------------------ SN

TEST(SortedNeighborTest, FindsAdjacentDuplicates) {
  const auto entities = MakeBlock({"b", "a", "b", "c"});
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const RunResult run = RunMechanism(sn, entities, match, {.window = 4});
  EXPECT_EQ(run.outcome.duplicates, 1);
  ASSERT_EQ(run.found.size(), 1u);
  EXPECT_EQ(run.found[0], MakePairKey(0, 2));
}

TEST(SortedNeighborTest, DistanceOrderedResolution) {
  // Sorted order: a b c d. Distance-1 pairs must all be resolved before any
  // distance-2 pair; with exact match nothing matches, so the comparison
  // order equals the enumeration order, observable through the counts at a
  // small window.
  const auto entities = MakeBlock({"d", "c", "b", "a"});
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const RunResult w2 = RunMechanism(sn, entities, match, {.window = 2});
  EXPECT_EQ(w2.outcome.distinct, 3);  // only the 3 distance-1 pairs
  const RunResult w3 = RunMechanism(sn, entities, match, {.window = 3});
  EXPECT_EQ(w3.outcome.distinct, 5);  // + 2 distance-2 pairs
  const RunResult w4 = RunMechanism(sn, entities, match, {.window = 4});
  EXPECT_EQ(w4.outcome.distinct, 6);  // all pairs
}

TEST(SortedNeighborTest, WindowLimitsComparisons) {
  const auto entities = MakeBlock({"a", "b", "c", "d", "e", "f", "g", "h"});
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const RunResult run = RunMechanism(sn, entities, match, {.window = 3});
  // distances 1..2: (8-1) + (8-2) = 13 pairs.
  EXPECT_EQ(run.outcome.duplicates + run.outcome.distinct, 13);
}

TEST(SortedNeighborTest, TerminationThresholdStops) {
  const auto entities = MakeBlock({"a", "b", "c", "d", "e", "f", "g", "h"});
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const RunResult run = RunMechanism(
      sn, entities, match, {.window = 8, .termination_distinct = 4});
  EXPECT_EQ(run.outcome.distinct, 5);  // stops once distinct > 4
  EXPECT_TRUE(run.outcome.stopped_early);
}

TEST(SortedNeighborTest, PopcornStops) {
  // 200 all-distinct entities; popcorn with a tiny window and a positive
  // threshold must fire well before the full window enumeration.
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) values.push_back("v" + std::to_string(i));
  const auto entities = MakeBlock(values);
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const RunResult run = RunMechanism(
      sn, entities, match,
      {.window = 100, .popcorn_threshold = 0.05, .popcorn_window = 20});
  EXPECT_TRUE(run.outcome.stopped_early);
  EXPECT_LE(run.outcome.duplicates + run.outcome.distinct, 25);
}

TEST(SortedNeighborTest, ResolvedSetSkipsAndRecords) {
  const auto entities = MakeBlock({"a", "a", "b"});
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  std::unordered_set<PairKey> resolved;
  const RunResult first =
      RunMechanism(sn, entities, match, {.window = 3}, &resolved);
  EXPECT_EQ(first.outcome.duplicates, 1);
  EXPECT_EQ(resolved.size(), 3u);
  // Second pass over the same block: everything skipped, nothing re-found.
  const RunResult second =
      RunMechanism(sn, entities, match, {.window = 3}, &resolved);
  EXPECT_EQ(second.outcome.duplicates, 0);
  EXPECT_EQ(second.outcome.distinct, 0);
  EXPECT_EQ(second.outcome.skipped, 3);
}

TEST(SortedNeighborTest, SkippedPairsAreCheap) {
  const auto entities = MakeBlock({"a", "a"});
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  std::unordered_set<PairKey> resolved;
  const RunResult first =
      RunMechanism(sn, entities, match, {.window = 2}, &resolved);
  const RunResult second =
      RunMechanism(sn, entities, match, {.window = 2}, &resolved);
  EXPECT_LT(second.cost, first.cost);
}

TEST(SortedNeighborTest, ShouldResolvePredicateSkips) {
  const auto entities = MakeBlock({"a", "a", "a"});
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const std::function<bool(const Entity&, const Entity&)> never =
      [](const Entity&, const Entity&) { return false; };
  const RunResult run =
      RunMechanism(sn, entities, match, {.window = 3}, nullptr, &never);
  EXPECT_EQ(run.outcome.duplicates, 0);
  EXPECT_EQ(run.outcome.skipped, 3);
}

TEST(SortedNeighborTest, EmptyAndSingletonBlocks) {
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const RunResult empty = RunMechanism(sn, {}, match, {.window = 5});
  EXPECT_EQ(empty.outcome.duplicates + empty.outcome.distinct, 0);
  const RunResult single =
      RunMechanism(sn, MakeBlock({"x"}), match, {.window = 5});
  EXPECT_EQ(single.outcome.duplicates + single.outcome.distinct, 0);
}

TEST(SortedNeighborTest, ChargesAdditionalCostUpFront) {
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const RunResult run = RunMechanism(sn, MakeBlock({"x", "y"}), match,
                                     {.window = 1});  // no pairs compared
  EXPECT_GT(run.cost, 0.0);  // CostA only
}

// ------------------------------------------------------------ PSNM

TEST(PsnmTest, CoversSamePairSetAsSn) {
  Rng rng(77);
  std::vector<std::string> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(std::string(1, static_cast<char>('a' + rng.UniformU64(26))) +
                     std::to_string(rng.UniformU64(50)));
  }
  const auto entities = MakeBlock(values);
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const PsnmMechanism psnm({}, /*partition_size=*/64);
  const RunResult a = RunMechanism(sn, entities, match, {.window = 10});
  const RunResult b = RunMechanism(psnm, entities, match, {.window = 10});
  EXPECT_EQ(a.outcome.duplicates + a.outcome.distinct,
            b.outcome.duplicates + b.outcome.distinct);
  std::set<PairKey> found_a(a.found.begin(), a.found.end());
  std::set<PairKey> found_b(b.found.begin(), b.found.end());
  EXPECT_EQ(found_a, found_b);
}

TEST(PsnmTest, PartitionMajorOrderWithinDistance) {
  // 4 entities, partition size 2: at distance 1, partition {0,1} is swept
  // before {2,3}; verify via early termination after 2 distinct pairs.
  const auto entities = MakeBlock({"a", "b", "c", "d"});
  const MatchFunction match = ExactMatch();
  const PsnmMechanism psnm({}, /*partition_size=*/2);
  const RunResult run = RunMechanism(
      psnm, entities, match, {.window = 4, .termination_distinct = 1});
  EXPECT_EQ(run.outcome.distinct, 2);
  EXPECT_TRUE(run.outcome.stopped_early);
}

// ------------------------------------------------------------ Full

TEST(FullResolverTest, ComparesAllPairs) {
  const auto entities = MakeBlock({"a", "b", "a", "b", "a"});
  const MatchFunction match = ExactMatch();
  const FullResolverMechanism full;
  const RunResult run = RunMechanism(full, entities, match, {});
  EXPECT_EQ(run.outcome.duplicates + run.outcome.distinct, 10);
  EXPECT_EQ(run.outcome.duplicates, 3 + 1);  // Pairs(3 a's) + Pairs(2 b's)
}

TEST(FullResolverTest, FindsDuplicatesSnMissesOutsideWindow) {
  // Entities sort on attribute 0 but match on attribute 1: the duplicate
  // pair sorts 5 ranks apart, outside a window of 2, so SN misses it while
  // the full resolver finds it.
  std::vector<Entity> entities;
  const std::vector<std::pair<std::string, std::string>> rows = {
      {"a", "X"}, {"b", "p"}, {"c", "q"}, {"d", "r"}, {"e", "s"}, {"f", "X"}};
  for (size_t i = 0; i < rows.size(); ++i) {
    Entity e;
    e.id = static_cast<EntityId>(i);
    e.attributes = {rows[i].first, rows[i].second};
    entities.push_back(std::move(e));
  }
  const MatchFunction match({{1, AttributeSimilarity::kExact, 1.0, 0}}, 0.5);
  const SortedNeighborMechanism sn;
  const FullResolverMechanism full;
  const RunResult narrow = RunMechanism(sn, entities, match, {.window = 2});
  const RunResult all = RunMechanism(full, entities, match, {});
  EXPECT_EQ(narrow.outcome.duplicates, 0);
  EXPECT_EQ(all.outcome.duplicates, 1);
}

}  // namespace
}  // namespace progres

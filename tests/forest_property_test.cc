#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/blocking_function.h"
#include "blocking/forest.h"
#include "common/random.h"
#include "model/dataset.h"

namespace progres {
namespace {

// Property suite: on random small datasets, the inclusion-exclusion Uncov
// computation must equal a brute-force count of pairs shared with a
// dominating family's root block.

struct Params {
  uint64_t seed;
  int num_entities;
  int num_families;
  int key_alphabet;  // how many distinct characters keys draw from
};

class ForestPropertyTest : public testing::TestWithParam<Params> {};

TEST_P(ForestPropertyTest, UncovMatchesBruteForce) {
  const Params p = GetParam();
  Rng rng(p.seed);

  // Random dataset: one attribute per family, values of 2-4 characters from
  // a small alphabet so that blocks overlap heavily.
  std::vector<std::string> schema;
  std::vector<FamilySpec> families;
  for (int f = 0; f < p.num_families; ++f) {
    schema.push_back("attr" + std::to_string(f));
    families.push_back({"F" + std::to_string(f), f, {1, 2}, -1});
  }
  Dataset dataset(schema);
  for (int i = 0; i < p.num_entities; ++i) {
    std::vector<std::string> attrs;
    for (int f = 0; f < p.num_families; ++f) {
      std::string v;
      const int len = static_cast<int>(2 + rng.UniformU64(3));
      for (int c = 0; c < len; ++c) {
        v.push_back(static_cast<char>(
            'a' + rng.UniformU64(static_cast<uint64_t>(p.key_alphabet))));
      }
      attrs.push_back(std::move(v));
    }
    dataset.Add(std::move(attrs));
  }

  const BlockingConfig config(families);
  std::vector<Forest> forests =
      BuildForests(dataset, config, /*keep_members=*/true);
  ComputeUncoveredPairs(dataset, config, &forests);

  for (int f = 0; f < p.num_families; ++f) {
    const Forest& forest = forests[static_cast<size_t>(f)];
    for (const BlockNode& node : forest.nodes) {
      // Brute force: a pair is uncovered iff it shares a root block of a
      // more dominating family.
      int64_t brute = 0;
      for (size_t i = 0; i < node.entities.size(); ++i) {
        for (size_t j = i + 1; j < node.entities.size(); ++j) {
          const Entity& a = dataset.entity(node.entities[i]);
          const Entity& b = dataset.entity(node.entities[j]);
          bool shared = false;
          for (int d = 0; d < f && !shared; ++d) {
            shared = config.Key(d, 1, a) == config.Key(d, 1, b);
          }
          if (shared) ++brute;
        }
      }
      EXPECT_EQ(node.uncov, brute)
          << "family " << f << " block " << node.id.path;
      EXPECT_GE(node.cov(), 0);
      EXPECT_LE(node.uncov, PairsOf(node.size));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ForestPropertyTest,
    testing::Values(Params{1, 40, 1, 2}, Params{2, 60, 2, 2},
                    Params{3, 60, 2, 3}, Params{4, 80, 3, 2},
                    Params{5, 50, 3, 3}, Params{6, 120, 3, 4},
                    Params{7, 30, 4, 2}));

}  // namespace
}  // namespace progres

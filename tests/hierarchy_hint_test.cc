#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mechanism/hierarchy_hint.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

std::vector<Entity> MakeBlock(const std::vector<std::string>& values) {
  std::vector<Entity> entities;
  for (size_t i = 0; i < values.size(); ++i) {
    Entity e;
    e.id = static_cast<EntityId>(i);
    e.attributes = {values[i]};
    entities.push_back(std::move(e));
  }
  return entities;
}

struct RunResult {
  ResolveOutcome outcome;
  std::vector<PairKey> found;
};

RunResult RunMech(const ProgressiveMechanism& mechanism,
              const std::vector<Entity>& entities, const MatchFunction& match,
              ResolveOptions options) {
  RunResult run;
  CostClock clock;
  std::vector<const Entity*> block;
  for (const Entity& e : entities) block.push_back(&e);
  ResolveRequest request;
  request.block = &block;
  request.sort_attribute = 0;
  request.match = &match;
  request.options = options;
  request.clock = &clock;
  request.on_duplicate = [&run](EntityId a, EntityId b) {
    run.found.push_back(MakePairKey(a, b));
  };
  run.outcome = mechanism.Resolve(request);
  return run;
}

MatchFunction ExactMatch() {
  return MatchFunction({{0, AttributeSimilarity::kExact, 1.0, 0}}, 0.5);
}

TEST(HierarchyHintTest, FindsAdjacentDuplicates) {
  const auto entities = MakeBlock({"b", "a", "b"});
  const MatchFunction match = ExactMatch();
  const HierarchyHintMechanism hint;
  const RunResult run = RunMech(hint, entities, match, {.window = 3});
  EXPECT_EQ(run.outcome.duplicates, 1);
}

// Property sweep: the hierarchy hint must cover exactly the same pair set
// as SN at the same window, across random blocks and leaf sizes.
class HierarchyCoverageTest
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HierarchyCoverageTest, SamePairSetAsSn) {
  const auto [seed, n, leaf] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  std::vector<std::string> values;
  for (int i = 0; i < n; ++i) {
    values.push_back(std::string(1, static_cast<char>('a' + rng.UniformU64(26))) +
                     std::to_string(rng.UniformU64(40)));
  }
  const auto entities = MakeBlock(values);
  const MatchFunction match = ExactMatch();
  const SortedNeighborMechanism sn;
  const HierarchyHintMechanism hint({}, leaf);
  for (int window : {2, 5, 10, 100}) {
    const RunResult a = RunMech(sn, entities, match, {.window = window});
    const RunResult b = RunMech(hint, entities, match, {.window = window});
    EXPECT_EQ(a.outcome.duplicates + a.outcome.distinct,
              b.outcome.duplicates + b.outcome.distinct)
        << "n=" << n << " leaf=" << leaf << " w=" << window;
    const std::set<PairKey> pairs_a(a.found.begin(), a.found.end());
    const std::set<PairKey> pairs_b(b.found.begin(), b.found.end());
    EXPECT_EQ(pairs_a, pairs_b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierarchyCoverageTest,
    testing::Values(std::make_tuple(1, 10, 4), std::make_tuple(2, 64, 4),
                    std::make_tuple(3, 100, 8), std::make_tuple(4, 37, 3),
                    std::make_tuple(5, 200, 16), std::make_tuple(6, 5, 2)));

TEST(HierarchyHintTest, FinePartitionsResolvedFirst) {
  // 8 sorted entities, leaf size 4. With termination after the first
  // distinct pair, only level-0 pairs (inside the two leaves) may have been
  // compared; the cross-leaf adjacent pair (ranks 3,4) comes later.
  const auto entities =
      MakeBlock({"a", "b", "c", "d", "e", "f", "g", "h"});
  const MatchFunction match = ExactMatch();
  const HierarchyHintMechanism hint({}, 4);
  const RunResult run = RunMech(hint, entities, match,
                            {.window = 8, .termination_distinct = 0});
  ASSERT_EQ(run.outcome.distinct, 1);
  // First compared pair is inside leaf 0 at distance 1: ("a", "b").
  EXPECT_EQ(run.outcome.duplicates, 0);
}

TEST(HierarchyHintTest, RespectsTermination) {
  std::vector<std::string> values;
  for (int i = 0; i < 50; ++i) values.push_back("v" + std::to_string(i));
  const auto entities = MakeBlock(values);
  const MatchFunction match = ExactMatch();
  const HierarchyHintMechanism hint;
  const RunResult run =
      RunMech(hint, entities, match, {.window = 50, .termination_distinct = 10});
  EXPECT_EQ(run.outcome.distinct, 11);
  EXPECT_TRUE(run.outcome.stopped_early);
}

TEST(HierarchyHintTest, TinyBlocks) {
  const MatchFunction match = ExactMatch();
  const HierarchyHintMechanism hint;
  EXPECT_EQ(RunMech(hint, {}, match, {}).outcome.distinct, 0);
  EXPECT_EQ(RunMech(hint, MakeBlock({"x"}), match, {}).outcome.distinct, 0);
  EXPECT_EQ(RunMech(hint, MakeBlock({"x", "y"}), match, {.window = 2})
                .outcome.distinct,
            1);
}

}  // namespace
}  // namespace progres

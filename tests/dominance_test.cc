#include <unordered_map>

#include <gtest/gtest.h>

#include "blocking/forest.h"
#include "datagen/generators.h"
#include "redundancy/dominance.h"

namespace progres {
namespace {

struct Fixture {
  LabeledDataset data;
  BlockingConfig config{std::vector<FamilySpec>{}};
  ProbabilityModel prob;
  std::vector<AnnotatedForest> forests;
  ProgressiveSchedule schedule;

  explicit Fixture(int64_t n = 2000, uint64_t seed = 51,
                   TreeScheduler scheduler = TreeScheduler::kOurs) {
    PublicationConfig gen;
    gen.num_entities = n;
    gen.seed = seed;
    data = GeneratePublications(gen);
    config = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                             {"Y", kPubAbstract, {3, 5}, -1},
                             {"Z", kPubVenue, {3, 5}, -1}});
    std::vector<Forest> raw =
        BuildForests(data.dataset, config, /*keep_members=*/false);
    ComputeUncoveredPairs(data.dataset, config, &raw);
    prob = ProbabilityModel::Train(data.dataset, data.truth, config);
    EstimateParams params;
    forests = AnnotateForests(raw, params, prob, data.dataset.size());
    ScheduleParams sp;
    sp.num_reduce_tasks = 4;
    sp.scheduler = scheduler;
    schedule = GenerateSchedule(&forests, sp);
  }
};

TEST(DominanceListTest, HasOneValuePerFamily) {
  Fixture fx;
  const Entity& e = fx.data.dataset.entity(0);
  // Find a block of family 0 containing e.
  const int node = fx.forests[0].Find(fx.config.Path(0, 1, e));
  ASSERT_GE(node, 0);
  const DominanceList list =
      BuildDominanceList(e, 0, node, fx.config, fx.forests, fx.schedule);
  EXPECT_GE(list.values.size(), 3u);
  EXPECT_LE(list.values.size(), 4u);
}

TEST(DominanceListTest, OwnFamilyUsesBlockTree) {
  Fixture fx;
  const Entity& e = fx.data.dataset.entity(1);
  const int node = fx.forests[0].Find(fx.config.Path(0, 1, e));
  ASSERT_GE(node, 0);
  const DominanceList list =
      BuildDominanceList(e, 0, node, fx.config, fx.forests, fx.schedule);
  const int root = fx.forests[0].FindTreeRoot(node);
  EXPECT_EQ(list.values[0], fx.schedule.dominance.at(BlockRefKey(0, root)));
}

TEST(DominanceListTest, SameMainBlockSameForeignValue) {
  Fixture fx;
  // Two entities sharing their family-1 main block must carry the same
  // value at position 1 when emitted for any family-0 block.
  const Dataset& d = fx.data.dataset;
  for (EntityId a = 0; a < d.size(); ++a) {
    for (EntityId b = a + 1; b < std::min<int64_t>(d.size(), a + 50); ++b) {
      if (fx.config.Key(1, 1, d.entity(a)) != fx.config.Key(1, 1, d.entity(b)))
        continue;
      const int node_a = fx.forests[0].Find(fx.config.Path(0, 1, d.entity(a)));
      const int node_b = fx.forests[0].Find(fx.config.Path(0, 1, d.entity(b)));
      if (node_a < 0 || node_b < 0) continue;
      const DominanceList la = BuildDominanceList(d.entity(a), 0, node_a,
                                                  fx.config, fx.forests,
                                                  fx.schedule);
      const DominanceList lb = BuildDominanceList(d.entity(b), 0, node_b,
                                                  fx.config, fx.forests,
                                                  fx.schedule);
      EXPECT_EQ(la.values[1], lb.values[1]);
      return;
    }
  }
  GTEST_SKIP() << "no pair sharing a family-1 main block found";
}

TEST(ShouldResolveTest, DominantFamilyOwnsSharedPair) {
  // Pair shares the family-0 tree (value 7). When resolving a family-1
  // block (index 2), position 0 matches -> not responsible.
  DominanceList a{{7, 20, 30}};
  DominanceList b{{7, 21, 31}};
  EXPECT_FALSE(ShouldResolve(a, b, /*index=*/2, /*n=*/3));
  // When resolving a family-0 block (index 1), no more-dominant family
  // exists -> responsible.
  EXPECT_TRUE(ShouldResolve(a, b, /*index=*/1, /*n=*/3));
}

TEST(ShouldResolveTest, NoSharedDominantTreeResolves) {
  DominanceList a{{7, 20, 30}};
  DominanceList b{{8, 21, 30}};
  EXPECT_TRUE(ShouldResolve(a, b, /*index=*/3, /*n=*/3));
}

TEST(ShouldResolveTest, SplitSubtreeOwnsPair) {
  // Both entities carry the same (n+1)st value: the pair belongs to a split
  // tree nested below the emitted block.
  DominanceList a{{7, 20, 30, 99}};
  DominanceList b{{8, 21, 31, 99}};
  EXPECT_FALSE(ShouldResolve(a, b, /*index=*/1, /*n=*/3));
  DominanceList c{{8, 21, 31, 98}};
  EXPECT_TRUE(ShouldResolve(a, c, /*index=*/1, /*n=*/3));
}

TEST(ShouldResolveTest, MissingOptionalValueResolves) {
  DominanceList a{{7, 20, 30, 99}};
  DominanceList b{{8, 21, 31}};  // no (n+1)st value
  EXPECT_TRUE(ShouldResolve(a, b, /*index=*/1, /*n=*/3));
}

// The central invariant of Sec. V: for every pair of entities sharing at
// least one block, exactly one main-family position claims responsibility —
// the most dominant family under which they co-occur.
TEST(ShouldResolveTest, ExactlyOneResponsibleFamily) {
  // NoSplit keeps every main block in its original tree, so responsibility
  // checks can run at the root level without the (n+1)st-value subtlety.
  Fixture fx(2000, 51, TreeScheduler::kNoSplit);
  const Dataset& d = fx.data.dataset;
  int checked = 0;
  for (EntityId a = 0; a < d.size() && checked < 500; ++a) {
    for (EntityId b = a + 1; b < std::min<int64_t>(d.size(), a + 20); ++b) {
      // Families under which the pair co-occurs in a root block.
      std::vector<int> shared_families;
      for (int f = 0; f < fx.config.num_families(); ++f) {
        const std::string key_a = fx.config.Key(f, 1, d.entity(a));
        if (!key_a.empty() && key_a == fx.config.Key(f, 1, d.entity(b))) {
          shared_families.push_back(f);
        }
      }
      if (shared_families.size() < 2) continue;
      ++checked;

      int responsible = 0;
      for (int f : shared_families) {
        const int node_a =
            fx.forests[static_cast<size_t>(f)].Find(fx.config.Path(f, 1, d.entity(a)));
        ASSERT_GE(node_a, 0);
        const DominanceList la = BuildDominanceList(
            d.entity(a), f, node_a, fx.config, fx.forests, fx.schedule);
        const DominanceList lb = BuildDominanceList(
            d.entity(b), f, node_a, fx.config, fx.forests, fx.schedule);
        if (ShouldResolve(la, lb, f + 1, fx.config.num_families())) {
          ++responsible;
          // Responsibility goes to the most dominant shared family.
          EXPECT_EQ(f, shared_families.front());
        }
      }
      EXPECT_EQ(responsible, 1)
          << "pair (" << a << "," << b << ") claimed by " << responsible
          << " families";
    }
  }
  EXPECT_GT(checked, 50);
}

}  // namespace
}  // namespace progres

// Differential property test: a trivial single-threaded map/sort/reduce
// reference implementation is run against MapReduceJob on randomized,
// seeded inputs covering the combiner, custom partitioners, reduce cleanup
// and fault injection — outputs must match exactly. The reference mirrors
// the Hadoop contract the runtime promises (contiguous input splits, keyed
// shuffle, stable merge in map-task order, key-sorted grouping), nothing
// about the runtime's internals.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mapreduce/job.h"

namespace progres {
namespace {

using Job = MapReduceJob<int, int, int>;
using KV = std::pair<int, int>;
using EmitFn = std::function<void(int, int)>;

// One randomized job specification, drawn from a seeded Rng.
struct CaseSpec {
  std::vector<int> input;
  int num_map_tasks = 1;
  int num_reduce_tasks = 1;
  int key_space = 10;
  int emissions_mod = 3;  // record emits 1 + (record % emissions_mod) pairs
  bool custom_partitioner = false;
  bool use_combiner = false;
  bool use_cleanup = false;
  FaultConfig fault;
};

CaseSpec DrawCase(Rng* rng) {
  CaseSpec spec;
  const int n = static_cast<int>(rng->UniformInt(0, 300));
  spec.input.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    spec.input.push_back(static_cast<int>(rng->UniformInt(0, 1000)));
  }
  spec.num_map_tasks = static_cast<int>(rng->UniformInt(1, 6));
  spec.num_reduce_tasks = static_cast<int>(rng->UniformInt(1, 5));
  spec.key_space = static_cast<int>(rng->UniformInt(1, 40));
  spec.emissions_mod = static_cast<int>(rng->UniformInt(1, 4));
  spec.custom_partitioner = rng->Bernoulli(0.5);
  spec.use_combiner = rng->Bernoulli(0.5);
  spec.use_cleanup = rng->Bernoulli(0.5);
  if (rng->Bernoulli(0.4)) {
    spec.fault.enabled = true;
    spec.fault.seed = rng->NextU64();
    spec.fault.map_failure_prob = rng->UniformDouble() * 0.4;
    spec.fault.reduce_failure_prob = rng->UniformDouble() * 0.4;
    // High enough that no drawn failure probability can realistically
    // exhaust the chain (0.4^12 per task); the suite stays deterministic.
    spec.fault.max_attempts = 12;
  }
  return spec;
}

// The job's logic, shared verbatim by both implementations.
void MapLogic(const CaseSpec& spec, int record, const EmitFn& emit) {
  const int emissions = 1 + record % spec.emissions_mod;
  for (int j = 0; j < emissions; ++j) {
    emit((record * 7 + j * 13) % spec.key_space, record + j);
  }
}

int PartitionLogic(const CaseSpec& spec, int key, int r) {
  if (spec.custom_partitioner) return ((key % r) + r) % r;
  return static_cast<int>(std::hash<int>{}(key) % static_cast<size_t>(r));
}

void CombineLogic(int key, std::vector<int>* values, std::vector<KV>* out) {
  // Keep a sum and the count — deliberately not a plain sum so combiner
  // application is observable in the output.
  int sum = 0;
  for (int v : *values) sum += v;
  out->emplace_back(key, sum);
  out->emplace_back(key, static_cast<int>(values->size()));
}

void ReduceLogic(int key, std::vector<int>* values, const EmitFn& emit) {
  int sum = 0;
  int alt = 0;
  int sign = 1;
  for (int v : *values) {
    sum += v;
    alt += sign * v;  // order-sensitive: catches merge-order bugs
    sign = -sign;
  }
  emit(key, sum);
  emit(key * 2 + 1, alt);
}

void CleanupLogic(int task_id, const EmitFn& emit) {
  emit(-100 - task_id, task_id);
}

// ---- Reference implementation: sequential map/sort/reduce ----

std::vector<KV> ReferenceRun(const CaseSpec& spec) {
  const int m = spec.num_map_tasks;
  const int r = spec.num_reduce_tasks;
  const size_t n = spec.input.size();

  // Map phase: contiguous splits, per-task partition buckets.
  std::vector<std::vector<std::vector<KV>>> buckets(
      static_cast<size_t>(m),
      std::vector<std::vector<KV>>(static_cast<size_t>(r)));
  for (int t = 0; t < m; ++t) {
    const size_t lo = n * static_cast<size_t>(t) / static_cast<size_t>(m);
    const size_t hi = n * static_cast<size_t>(t + 1) / static_cast<size_t>(m);
    auto& task_buckets = buckets[static_cast<size_t>(t)];
    for (size_t i = lo; i < hi; ++i) {
      MapLogic(spec, spec.input[i], [&](int key, int value) {
        const int p = PartitionLogic(spec, key, r);
        task_buckets[static_cast<size_t>(p)].emplace_back(key, value);
      });
    }
    if (spec.use_combiner) {
      for (auto& bucket : task_buckets) {
        std::stable_sort(bucket.begin(), bucket.end(),
                         [](const KV& a, const KV& b) {
                           return a.first < b.first;
                         });
        std::vector<KV> combined;
        size_t i = 0;
        while (i < bucket.size()) {
          size_t j = i;
          while (j < bucket.size() && bucket[j].first == bucket[i].first) ++j;
          std::vector<int> values;
          for (size_t k = i; k < j; ++k) values.push_back(bucket[k].second);
          CombineLogic(bucket[i].first, &values, &combined);
          i = j;
        }
        bucket = std::move(combined);
      }
    }
  }

  // Reduce phase: merge in map-task order, stable sort by key, group.
  std::vector<KV> outputs;
  for (int task = 0; task < r; ++task) {
    std::vector<KV> pairs;
    for (int t = 0; t < m; ++t) {
      const auto& bucket =
          buckets[static_cast<size_t>(t)][static_cast<size_t>(task)];
      pairs.insert(pairs.end(), bucket.begin(), bucket.end());
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const KV& a, const KV& b) {
                       return a.first < b.first;
                     });
    const EmitFn emit = [&](int key, int value) {
      outputs.emplace_back(key, value);
    };
    size_t i = 0;
    while (i < pairs.size()) {
      size_t j = i;
      while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
      std::vector<int> values;
      for (size_t k = i; k < j; ++k) values.push_back(pairs[k].second);
      ReduceLogic(pairs[i].first, &values, emit);
      i = j;
    }
    if (spec.use_cleanup) CleanupLogic(task, emit);
  }
  return outputs;
}

// ---- Runtime under test ----

std::vector<KV> RuntimeRun(const CaseSpec& spec) {
  Job job(spec.num_map_tasks, spec.num_reduce_tasks);
  job.set_map_cost_per_record(0.1);
  job.set_partitioner([&spec](const int& key, int r) {
    return PartitionLogic(spec, key, r);
  });
  if (spec.use_combiner) {
    job.set_combiner([](const int& key, std::vector<int>* values,
                        std::vector<KV>* out) {
      CombineLogic(key, values, out);
    });
  }
  if (spec.use_cleanup) {
    job.set_reduce_cleanup([](Job::ReduceContext* ctx) {
      CleanupLogic(ctx->task_id(), [ctx](int key, int value) {
        ctx->Emit(key, value);
      });
    });
  }
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.fault = spec.fault;
  const Job::Result result = job.Run(
      spec.input,
      [&spec](const int& record, Job::MapContext* ctx) {
        MapLogic(spec, record, [ctx](int key, int value) {
          ctx->Emit(key, value);
        });
      },
      [](const int& key, std::vector<int>* values, Job::ReduceContext* ctx) {
        ReduceLogic(key, values, [ctx](int k, int v) { ctx->Emit(k, v); });
      },
      cluster);
  EXPECT_FALSE(result.failed) << result.error;
  return result.outputs;
}

TEST(MrReferenceTest, RandomizedDifferential) {
  Rng rng(20260806);
  int faulted_cases = 0;
  for (int c = 0; c < 50; ++c) {
    const CaseSpec spec = DrawCase(&rng);
    if (spec.fault.enabled) ++faulted_cases;
    const std::vector<KV> expected = ReferenceRun(spec);
    const std::vector<KV> actual = RuntimeRun(spec);
    ASSERT_EQ(actual, expected)
        << "case " << c << ": n=" << spec.input.size()
        << " m=" << spec.num_map_tasks << " r=" << spec.num_reduce_tasks
        << " keys=" << spec.key_space
        << " combiner=" << spec.use_combiner
        << " cleanup=" << spec.use_cleanup
        << " custom_part=" << spec.custom_partitioner
        << " fault=" << spec.fault.enabled;
  }
  // The draw should exercise the fault path in a healthy share of cases.
  EXPECT_GE(faulted_cases, 5);
}

TEST(MrReferenceTest, EmptyInputMatchesReference) {
  CaseSpec spec;
  spec.input = {};
  spec.num_map_tasks = 3;
  spec.num_reduce_tasks = 2;
  spec.use_cleanup = true;
  EXPECT_EQ(RuntimeRun(spec), ReferenceRun(spec));
}

TEST(MrReferenceTest, SingleRecordAllHooks) {
  CaseSpec spec;
  spec.input = {42};
  spec.num_map_tasks = 4;  // three empty splits
  spec.num_reduce_tasks = 3;
  spec.key_space = 5;
  spec.use_combiner = true;
  spec.use_cleanup = true;
  spec.custom_partitioner = true;
  EXPECT_EQ(RuntimeRun(spec), ReferenceRun(spec));
}

}  // namespace
}  // namespace progres

// Chaos soak: every fault family at once — task-attempt crashes, hangs
// killed by the heartbeat timeout, a machine death, shuffle checksum
// corruption and poison records under skip-bad-records — across many fault
// seeds, against one clean run. The acceptance bar: resolved pairs are
// byte-identical to the fault-free run except for pairs touching
// quarantined records, and every new "mr." fault counter reconciles
// exactly with the recorded trace.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "mapreduce/fault.h"
#include "mapreduce/trace.h"
#include "mechanism/sorted_neighbor.h"
#include "model/entity.h"
#include "mr_test_util.h"

namespace progres {
namespace {

// The three poison records, one per region of the input. Fixed across
// seeds: the quarantine set — and with it the data plane — must not depend
// on the fault seed.
const std::vector<int64_t> kPoisonRecords = {7, 450, 901};

struct ChaosWorld {
  LabeledDataset data;
  LabeledDataset train;
  BlockingConfig blocking;
  MatchFunction match;
  ProbabilityModel prob;
  SortedNeighborMechanism sn;
  ProgressiveErOptions base;
  ErRunResult clean;
  // Quarantined entity ids implied by kPoisonRecords, sorted.
  std::vector<EntityId> poison_ids;
  // The clean run's duplicates minus every pair touching a poison id — what
  // a run that quarantines kPoisonRecords must resolve, exactly.
  std::vector<PairKey> expected_pairs;
};

const ChaosWorld& World() {
  static const ChaosWorld* world = [] {
    auto* w = new ChaosWorld{
        [] {
          PublicationConfig gen;
          gen.num_entities = 1200;
          gen.seed = 23;
          return GeneratePublications(gen);
        }(),
        [] {
          PublicationConfig gen;
          gen.num_entities = 400;
          gen.seed = 24;
          return GeneratePublications(gen);
        }(),
        BlockingConfig(
            {{"X", kPubTitle, {2, 4}, -1}, {"Y", kPubVenue, {3}, -1}}),
        MatchFunction({{kPubTitle, AttributeSimilarity::kEditDistance, 0.7, 0},
                       {kPubVenue, AttributeSimilarity::kEditDistance, 0.3, 0}},
                      0.75),
        ProbabilityModel(),
        SortedNeighborMechanism(),
        ProgressiveErOptions(),
        ErRunResult(),
        {},
        {}};
    w->prob = ProbabilityModel::Train(w->train.dataset, w->train.truth,
                                      w->blocking);
    w->base.cluster.machines = 3;
    w->base.cluster.execution_threads = 4;
    w->base.cluster.seconds_per_cost_unit = 1e-3;
    w->base.alpha = 500.0;
    w->clean = ProgressiveEr(w->blocking, w->match, w->sn, w->prob, w->base)
                   .Run(w->data.dataset);
    for (const int64_t r : kPoisonRecords) {
      w->poison_ids.push_back(
          w->data.dataset.entity(static_cast<EntityId>(r)).id);
    }
    std::sort(w->poison_ids.begin(), w->poison_ids.end());
    for (const PairKey pair : w->clean.duplicates) {
      const auto [a, b] = PairKeyIds(pair);
      if (!std::binary_search(w->poison_ids.begin(), w->poison_ids.end(), a) &&
          !std::binary_search(w->poison_ids.begin(), w->poison_ids.end(), b)) {
        w->expected_pairs.push_back(pair);
      }
    }
    return w;
  }();
  return *world;
}

// All fault families at once, derived from one seed — including the
// storage domain: transient spill-write errors, torn writes, run
// corruption and planned ENOSPC on the primary spill dir.
FaultConfig ChaosFault(uint64_t seed, double machine_death_time) {
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = seed;
  fault.max_attempts = 12;
  fault.map_failure_prob = 0.05;
  fault.reduce_failure_prob = 0.1;
  fault.map_hang_prob = 0.05;
  fault.reduce_hang_prob = 0.1;
  fault.task_timeout_seconds = 2.0;
  fault.retry_backoff_seconds = 0.5;
  fault.machine_failures = {{1, machine_death_time}};
  fault.shuffle_corrupt_prob = 0.05;
  fault.max_fetch_retries = 1;
  fault.poison_records = kPoisonRecords;
  fault.skip_bad_records = true;
  fault.spill_write_error_prob = 0.1;
  fault.spill_torn_write_prob = 0.05;
  fault.spill_corrupt_prob = 0.05;
  fault.spill_enospc_prob = 0.05;
  fault.spill_retry_backoff_seconds = 0.1;
  return fault;
}

// Spills every map output through run files so the storage faults have a
// surface to hit; ENOSPC discoveries fail over to the fallback dir.
ShuffleBudget ChaosBudget() {
  const std::filesystem::path fallback =
      std::filesystem::temp_directory_path() / "progres_chaos_fallback";
  std::filesystem::create_directories(fallback);
  ShuffleBudget budget;
  budget.max_bytes = 1;
  budget.block_bytes = 4096;
  budget.fallback_spill_dir = fallback.string();
  return budget;
}

TEST(ChaosTest, TenSeedsResolveIdenticalNonQuarantinedPairs) {
  const ChaosWorld& w = World();
  ASSERT_FALSE(w.clean.failed) << w.clean.error;
  ASSERT_FALSE(w.expected_pairs.empty());
  ASSERT_LT(w.expected_pairs.size(), w.clean.duplicates.size())
      << "poison records must actually remove some pairs";

  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    TraceRecorder trace;
    ProgressiveErOptions options = w.base;
    options.cluster.fault = ChaosFault(seed, w.clean.total_time * 0.4);
    options.cluster.shuffle_budget = ChaosBudget();
    options.cluster.trace = &trace;
    options.checkpoint_recovery = true;
    const ErRunResult run =
        ProgressiveEr(w.blocking, w.match, w.sn, w.prob, options)
            .Run(w.data.dataset);
    ASSERT_FALSE(run.failed) << run.error;

    // The quarantine set is exactly the poison set, every seed.
    EXPECT_EQ(run.quarantined_ids, w.poison_ids);
    // Byte-identical resolved pairs, minus only the quarantined records'.
    EXPECT_EQ(run.duplicates, w.expected_pairs);
    EXPECT_GE(run.total_time, w.clean.total_time);

    // Counter/trace reconciliation: every fault the counters claim is a
    // fault the trace shows, one for one. ErRunResult::counters reports the
    // resolution job only, so restrict the tally to its trace process (the
    // statistics job's faults live under its own pid).
    const int pid = trace.PidOf("resolution job");
    ASSERT_GE(pid, 0);
    int64_t timed_out_spans = 0;
    int64_t machine_lost_spans = 0;
    for (const TraceSpan& span : trace.spans()) {
      if (span.pid != pid || span.kind != SpanKind::kAttempt) continue;
      if (span.outcome == SpanOutcome::kTimedOut) ++timed_out_spans;
      if (span.outcome == SpanOutcome::kMachineLost) ++machine_lost_spans;
    }
    int64_t spill_retry_spans = 0;
    int64_t run_corrupt_spans = 0;
    for (const TraceSpan& span : trace.spans()) {
      if (span.pid != pid) continue;
      if (span.kind == SpanKind::kSpillRetry) ++spill_retry_spans;
      if (span.kind == SpanKind::kRunCorrupt) ++run_corrupt_spans;
    }
    int64_t corruption_instants = 0;
    int64_t quarantine_instants = 0;
    for (const TraceInstant& instant : trace.instants()) {
      if (instant.pid != pid) continue;
      if (instant.kind == InstantKind::kShuffleCorruption) {
        ++corruption_instants;
        EXPECT_GE(instant.task, 0);
        EXPECT_GE(instant.peer_task, 0);
      }
      if (instant.kind == InstantKind::kRecordQuarantined) {
        ++quarantine_instants;
        EXPECT_GE(instant.record, 0);
      }
    }
    EXPECT_EQ(timed_out_spans, run.counters.Get("mr.faults.task_timeouts"));
    EXPECT_EQ(machine_lost_spans, run.counters.Get("mr.faults.machine_lost"));
    EXPECT_EQ(corruption_instants,
              run.counters.Get("mr.shuffle.checksum_errors"));
    EXPECT_EQ(quarantine_instants, run.counters.Get("mr.skipped.records"));
    // Every checksum error was re-fetched exactly once.
    EXPECT_EQ(run.counters.Get("mr.shuffle.refetches"),
              run.counters.Get("mr.shuffle.checksum_errors"));
    // Storage-domain ledger: one kSpillRetry span per counted spill retry,
    // one kRunCorrupt span per run failing CRC validation at the barrier.
    EXPECT_EQ(spill_retry_spans, run.counters.Get("mr.disk.retries"));
    EXPECT_EQ(run_corrupt_spans, run.counters.Get("mr.disk.corrupt_runs"));
    EXPECT_EQ(quarantine_instants,
              static_cast<int64_t>(kPoisonRecords.size()));
  }
}

// At least one seed of the soak exercises every family (seed-checked once:
// the sum over the ten fixed seeds is deterministic).
TEST(ChaosTest, SoakCoversEveryFaultFamily) {
  const ChaosWorld& w = World();
  int64_t timeouts = 0, errors = 0, lost = 0, failed = 0;
  int64_t disk_retries = 0, corrupt_runs = 0, enospc = 0, failovers = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ProgressiveErOptions options = w.base;
    options.cluster.fault = ChaosFault(seed, w.clean.total_time * 0.4);
    options.cluster.shuffle_budget = ChaosBudget();
    const ErRunResult run =
        ProgressiveEr(w.blocking, w.match, w.sn, w.prob, options)
            .Run(w.data.dataset);
    ASSERT_FALSE(run.failed) << run.error;
    timeouts += run.counters.Get("mr.faults.task_timeouts");
    errors += run.counters.Get("mr.shuffle.checksum_errors");
    lost += run.counters.Get("mr.faults.machine_lost");
    failed += run.counters.Get("mr.failed_attempts");
    disk_retries += run.counters.Get("mr.disk.retries");
    corrupt_runs += run.counters.Get("mr.disk.corrupt_runs");
    enospc += run.counters.Get("mr.disk.enospc");
    failovers += run.counters.Get("mr.disk.dir_failovers");
  }
  EXPECT_GE(timeouts, 1);
  EXPECT_GE(errors, 1);
  EXPECT_GE(lost, 1);
  // Crashes + hangs + poison crashes all feed mr.failed_attempts.
  EXPECT_GE(failed, 10);
  // The storage domain gets exercised too: transient write errors retried,
  // corrupt runs caught at the barrier, ENOSPC failed over to the fallback.
  EXPECT_GE(disk_retries, 1);
  EXPECT_GE(corrupt_runs, 1);
  EXPECT_GE(enospc, 1);
  EXPECT_GE(failovers, 1);
}

// The pair-level schedulers under fire: BlockSplit and PairRange ship
// sub-block match tasks through the same faulty fabric — machine loss,
// crashes, hangs, shuffle corruption, storage faults, poison records — and
// must still resolve exactly the clean run's non-quarantined pairs, with
// the fault counters reconciling one-for-one against the trace. This pins
// the multi-emit map side (one block shipped to several reduce tasks)
// against attempt re-runs: a replayed task must re-receive every unit.
TEST(ChaosTest, PairLevelSchedulersSurviveFaultsWithIdenticalPairs) {
  const ChaosWorld& w = World();
  ASSERT_FALSE(w.clean.failed) << w.clean.error;

  for (const TreeScheduler scheduler :
       {TreeScheduler::kBlockSplit, TreeScheduler::kPairRange}) {
    for (uint64_t seed = 11; seed <= 13; ++seed) {
      SCOPED_TRACE("scheduler " +
                   std::string(scheduler == TreeScheduler::kBlockSplit
                                   ? "blocksplit"
                                   : "pairrange") +
                   " fault seed " + std::to_string(seed));
      TraceRecorder trace;
      ProgressiveErOptions options = w.base;
      options.scheduler = scheduler;
      options.cluster.fault = ChaosFault(seed, w.clean.total_time * 0.4);
      options.cluster.shuffle_budget = ChaosBudget();
      options.cluster.trace = &trace;
      const ErRunResult run =
          ProgressiveEr(w.blocking, w.match, w.sn, w.prob, options)
              .Run(w.data.dataset);
      ASSERT_FALSE(run.failed) << run.error;

      EXPECT_EQ(run.quarantined_ids, w.poison_ids);
      EXPECT_EQ(run.duplicates, w.expected_pairs);

      const int pid = trace.PidOf("resolution job");
      ASSERT_GE(pid, 0);
      int64_t timed_out_spans = 0;
      int64_t machine_lost_spans = 0;
      int64_t spill_retry_spans = 0;
      int64_t run_corrupt_spans = 0;
      for (const TraceSpan& span : trace.spans()) {
        if (span.pid != pid) continue;
        if (span.kind == SpanKind::kAttempt) {
          if (span.outcome == SpanOutcome::kTimedOut) ++timed_out_spans;
          if (span.outcome == SpanOutcome::kMachineLost) ++machine_lost_spans;
        }
        if (span.kind == SpanKind::kSpillRetry) ++spill_retry_spans;
        if (span.kind == SpanKind::kRunCorrupt) ++run_corrupt_spans;
      }
      int64_t corruption_instants = 0;
      int64_t quarantine_instants = 0;
      for (const TraceInstant& instant : trace.instants()) {
        if (instant.pid != pid) continue;
        if (instant.kind == InstantKind::kShuffleCorruption) {
          ++corruption_instants;
        }
        if (instant.kind == InstantKind::kRecordQuarantined) {
          ++quarantine_instants;
        }
      }
      EXPECT_EQ(timed_out_spans, run.counters.Get("mr.faults.task_timeouts"));
      EXPECT_EQ(machine_lost_spans,
                run.counters.Get("mr.faults.machine_lost"));
      EXPECT_EQ(corruption_instants,
                run.counters.Get("mr.shuffle.checksum_errors"));
      EXPECT_EQ(quarantine_instants, run.counters.Get("mr.skipped.records"));
      EXPECT_EQ(spill_retry_spans, run.counters.Get("mr.disk.retries"));
      EXPECT_EQ(run_corrupt_spans, run.counters.Get("mr.disk.corrupt_runs"));
    }
  }
}

// The tentpole's checkpoint interaction: a reduce attempt killed by the
// heartbeat timeout resumes from its last alpha-boundary checkpoint, so the
// run replays strictly fewer pairs than the same run without checkpointed
// recovery — with byte-identical resolved pairs.
TEST(ChaosTest, CheckpointRecoveryReplaysFewerPairsAfterReduceHang) {
  const ChaosWorld& w = World();

  ProgressiveErOptions options = w.base;
  options.cluster.fault.enabled = true;
  options.cluster.fault.task_timeout_seconds = 2.0;
  // Reduce task 0 hangs at 90% of its first attempt — well past several
  // alpha boundaries.
  options.cluster.fault.injected_hangs = {{TaskPhase::kReduce, 0, 0, 0.9}};

  const ErRunResult scratch =
      ProgressiveEr(w.blocking, w.match, w.sn, w.prob, options)
          .Run(w.data.dataset);
  ASSERT_FALSE(scratch.failed) << scratch.error;

  options.checkpoint_recovery = true;
  const ErRunResult resumed =
      ProgressiveEr(w.blocking, w.match, w.sn, w.prob, options)
          .Run(w.data.dataset);
  ASSERT_FALSE(resumed.failed) << resumed.error;

  EXPECT_EQ(scratch.duplicates, w.clean.duplicates);
  EXPECT_EQ(resumed.duplicates, w.clean.duplicates);
  EXPECT_GE(scratch.counters.Get("mr.faults.task_timeouts"), 1);
  EXPECT_GE(resumed.counters.Get("mr.faults.task_timeouts"), 1);
  ASSERT_GT(scratch.counters.Get("mr.recovery.replayed_pairs"), 0);
  EXPECT_GT(resumed.counters.Get("mr.checkpoint.restored"), 0);
  EXPECT_LT(resumed.counters.Get("mr.recovery.replayed_pairs"),
            scratch.counters.Get("mr.recovery.replayed_pairs"));
}

// Deadline sweep in the chaos matrix: the same chaotic world — crashes,
// hangs, a machine death, shuffle corruption, storage faults, poison
// records — run degraded under successively looser job deadlines. Coverage
// and the resolved-pair count must grow monotonically with the deadline,
// every resolved pair must come from the clean run (degradation truncates,
// it never invents), and the supervisor counters must reconcile one-for-one
// with the kDeadlineCancel / kTaskQuarantine spans of the resolution job.
TEST(ChaosTest, DeadlineSweepDegradesMonotonically) {
  const ChaosWorld& w = World();
  ASSERT_FALSE(w.clean.failed) << w.clean.error;

  std::vector<PairKey> clean_sorted = w.clean.duplicates;
  std::sort(clean_sorted.begin(), clean_sorted.end());

  double prev_covered = -1.0;
  size_t prev_pairs = 0;
  for (const double fraction : {0.25, 0.5, 0.75}) {
    SCOPED_TRACE("deadline fraction " + std::to_string(fraction));
    TraceRecorder trace;
    ProgressiveErOptions options = w.base;
    options.cluster.fault = ChaosFault(3, w.clean.total_time * 0.4);
    options.cluster.shuffle_budget = ChaosBudget();
    options.cluster.trace = &trace;
    options.cluster.control.deadline_seconds = w.clean.total_time * fraction;
    options.cluster.control.allow_degraded = true;
    const ErRunResult run =
        ProgressiveEr(w.blocking, w.match, w.sn, w.prob, options)
            .Run(w.data.dataset);
    ASSERT_FALSE(run.failed) << run.error;
    EXPECT_TRUE(run.completeness.degraded);
    EXPECT_LT(run.completeness.covered_fraction, 1.0);

    for (const PairKey pair : run.duplicates) {
      EXPECT_TRUE(std::binary_search(clean_sorted.begin(), clean_sorted.end(),
                                     pair));
    }
    // More deadline, more coverage, more pairs.
    EXPECT_GE(run.completeness.covered_fraction, prev_covered);
    EXPECT_GE(run.duplicates.size(), prev_pairs);
    prev_covered = run.completeness.covered_fraction;
    prev_pairs = run.duplicates.size();

    // Supervisor-ledger reconciliation, restricted to the resolution job's
    // trace process like the fault-counter checks above.
    const int pid = trace.PidOf("resolution job");
    ASSERT_GE(pid, 0);
    int64_t cancel_spans = 0;
    int64_t quarantine_spans = 0;
    for (const TraceSpan& span : trace.spans()) {
      if (span.pid != pid) continue;
      if (span.kind == SpanKind::kDeadlineCancel) ++cancel_spans;
      if (span.kind == SpanKind::kTaskQuarantine) ++quarantine_spans;
    }
    EXPECT_EQ(cancel_spans, run.counters.Get("mr.supervisor.deadline_cancels"));
    EXPECT_EQ(quarantine_spans,
              run.counters.Get("mr.supervisor.quarantined_tasks"));
    EXPECT_GE(cancel_spans, 1);
  }
}

}  // namespace
}  // namespace progres

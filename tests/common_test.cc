#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/tsv.h"
#include "mapreduce/trace.h"

namespace progres {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.UniformU64(17), 17u);
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfFavorsSmallIndexes) {
  Rng rng(23);
  int64_t first = 0;
  int64_t last = 0;
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = rng.Zipf(100, 1.2);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    if (v == 0) ++first;
    if (v == 99) ++last;
  }
  EXPECT_GT(first, 10 * (last + 1));
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(29);
  EXPECT_EQ(rng.Zipf(1, 1.5), 0);
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, PrefixShorterThanString) {
  EXPECT_EQ(Prefix("hello", 3), "hel");
}

TEST(StringUtilTest, PrefixLongerThanString) {
  EXPECT_EQ(Prefix("hi", 10), "hi");
}

TEST(StringUtilTest, PrefixEmpty) { EXPECT_EQ(Prefix("", 4), ""); }

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC xY-9"), "abc xy-9");
}

TEST(StringUtilTest, SplitBasic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, JoinInvertsSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, '\t'), "a\tb\tc");
  EXPECT_EQ(Join({}, ','), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "ello"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

// ---------------------------------------------------------------- tsv

TEST(TsvTest, RoundTrip) {
  const std::string path = testing::TempDir() + "/progres_tsv_test.tsv";
  const std::vector<std::vector<std::string>> rows = {
      {"a", "b", "c"}, {"1", "", "3"}, {"only"}};
  ASSERT_TRUE(WriteTsv(path, rows));
  std::vector<std::vector<std::string>> read;
  ASSERT_TRUE(ReadTsv(path, &read));
  EXPECT_EQ(read, rows);
  std::remove(path.c_str());
}

TEST(TsvTest, ReadMissingFileFails) {
  std::vector<std::vector<std::string>> rows;
  EXPECT_FALSE(ReadTsv("/nonexistent/progres.tsv", &rows));
}

// ---------------------------------------------------------------- time

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch stopwatch;
  const double first = stopwatch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  const double second = stopwatch.ElapsedSeconds();
  EXPECT_GE(second, first);
  stopwatch.Reset();
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.0);
}

// ---------------------------------------------------------------- pool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(3);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadFallback) {
  ThreadPool pool(0);  // clamped to 1
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 10);
}

// Stress: many tiny tasks, submitted concurrently from several producer
// threads while the pool is draining, each recording into one shared
// TraceRecorder. Run under the PROGRES_TSAN CI job this exercises both the
// pool's submit/drain synchronization and the recorder's locked merge path
// (concurrent RecordSpan/RecordInstant against snapshot reads).
TEST(ThreadPoolTest, StressTinyTasksWithConcurrentSubmitters) {
  constexpr int kSubmitters = 4;
  constexpr int kTasksPerSubmitter = 500;
  ThreadPool pool(8);
  TraceRecorder recorder;
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &recorder, &executed, s] {
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        pool.Submit([&recorder, &executed, s, i] {
          TraceSpan span;
          span.task = s * kTasksPerSubmitter + i;
          span.slot = s;
          span.start = i;
          span.end = i + 1;
          recorder.RecordSpan(span);
          if (i % 100 == 0) {
            TraceInstant instant;
            instant.machine = s;
            instant.time = i;
            recorder.RecordInstant(instant);
          }
          executed.fetch_add(1);
        });
        if (i % 50 == 0) {
          // Concurrent snapshot reads race against the writers above;
          // TSan flags any unlocked access inside the recorder.
          (void)recorder.spans().size();
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksPerSubmitter);
  EXPECT_EQ(recorder.spans().size(),
            static_cast<size_t>(kSubmitters * kTasksPerSubmitter));
  EXPECT_EQ(recorder.instants().size(),
            static_cast<size_t>(kSubmitters * (kTasksPerSubmitter / 100)));
  EXPECT_FALSE(recorder.ToChromeJson().empty());
  EXPECT_FALSE(recorder.ToSlotTimeline().empty());
}

}  // namespace
}  // namespace progres

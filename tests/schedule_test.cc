#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "blocking/forest.h"
#include "datagen/generators.h"
#include "estimate/prob_model.h"
#include "schedule/schedule.h"

namespace progres {
namespace {

struct Fixture {
  LabeledDataset data;
  BlockingConfig config{std::vector<FamilySpec>{}};
  ProbabilityModel prob;
  EstimateParams params;

  explicit Fixture(int64_t n = 4000, uint64_t seed = 41) {
    PublicationConfig gen;
    gen.num_entities = n;
    gen.seed = seed;
    data = GeneratePublications(gen);
    config = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                             {"Y", kPubAbstract, {3, 5}, -1},
                             {"Z", kPubVenue, {3, 5}, -1}});
  }

  std::vector<AnnotatedForest> Annotate() {
    std::vector<Forest> forests =
        BuildForests(data.dataset, config, /*keep_members=*/false);
    ComputeUncoveredPairs(data.dataset, config, &forests);
    prob = ProbabilityModel::Train(data.dataset, data.truth, config);
    return AnnotateForests(forests, params, prob, data.dataset.size());
  }
};

ScheduleParams DefaultParams(int r, TreeScheduler scheduler) {
  ScheduleParams p;
  p.num_reduce_tasks = r;
  p.scheduler = scheduler;
  return p;
}

TEST(CostVectorTest, UniformVectorIsIncreasing) {
  const std::vector<double> c = MakeUniformCostVector(1000.0, 4, 5);
  ASSERT_EQ(c.size(), 5u);
  for (size_t i = 1; i < c.size(); ++i) EXPECT_GT(c[i], c[i - 1]);
  EXPECT_DOUBLE_EQ(c.back(), 250.0);
}

TEST(CostVectorTest, LinearWeightsNonIncreasing) {
  const std::vector<double> w = MakeLinearWeights(5);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w.front(), 1.0);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i], w[i - 1]);
  EXPECT_GT(w.back(), 0.0);
}

TEST(ScheduleTest, EveryLiveBlockScheduledExactlyOnce) {
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  const ProgressiveSchedule schedule =
      GenerateSchedule(&forests, DefaultParams(4, TreeScheduler::kOurs));

  std::set<uint64_t> scheduled;
  for (const auto& blocks : schedule.task_blocks) {
    for (const BlockRef& ref : blocks) {
      EXPECT_TRUE(scheduled.insert(BlockRefKey(ref)).second)
          << "block scheduled twice";
    }
  }
  size_t live = 0;
  for (const AnnotatedForest& forest : forests) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      if (!forest.block(n).eliminated) {
        ++live;
        EXPECT_TRUE(scheduled.count(BlockRefKey(forest.family(), n)))
            << "live block missing from schedule";
      }
    }
  }
  EXPECT_EQ(scheduled.size(), live);
}

TEST(ScheduleTest, SequenceValuesMatchTaskRanges) {
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  const ProgressiveSchedule schedule =
      GenerateSchedule(&forests, DefaultParams(5, TreeScheduler::kOurs));
  for (int t = 0; t < schedule.num_reduce_tasks; ++t) {
    const auto& blocks = schedule.task_blocks[static_cast<size_t>(t)];
    for (size_t i = 0; i < blocks.size(); ++i) {
      const int64_t sq = schedule.SequenceOf(blocks[i].family, blocks[i].node);
      ASSERT_GE(sq, 0);
      EXPECT_EQ(schedule.TaskOfSequence(sq), t);
      // Sequence order equals block-schedule order.
      EXPECT_EQ(sq % schedule.range_per_task, static_cast<int64_t>(i));
    }
  }
}

TEST(ScheduleTest, TreesNeverSpanTasks) {
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  const ProgressiveSchedule schedule =
      GenerateSchedule(&forests, DefaultParams(4, TreeScheduler::kOurs));
  std::unordered_map<uint64_t, int> task_of_block;
  for (int t = 0; t < schedule.num_reduce_tasks; ++t) {
    for (const BlockRef& ref : schedule.task_blocks[static_cast<size_t>(t)]) {
      task_of_block[BlockRefKey(ref)] = t;
    }
  }
  for (const AnnotatedForest& forest : forests) {
    for (int root : forest.tree_roots()) {
      const int task = task_of_block.at(BlockRefKey(forest.family(), root));
      for (int n : forest.TreeBlocks(root)) {
        EXPECT_EQ(task_of_block.at(BlockRefKey(forest.family(), n)), task)
            << "tree split across reduce tasks";
      }
    }
  }
}

TEST(ScheduleTest, BlockSchedulesAreBottomUp) {
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  const ProgressiveSchedule schedule =
      GenerateSchedule(&forests, DefaultParams(4, TreeScheduler::kOurs));
  for (const auto& blocks : schedule.task_blocks) {
    std::unordered_map<uint64_t, size_t> position;
    for (size_t i = 0; i < blocks.size(); ++i) {
      position[BlockRefKey(blocks[i])] = i;
    }
    for (const BlockRef& ref : blocks) {
      const AnnotatedForest& forest =
          forests[static_cast<size_t>(ref.family)];
      const AnnotatedBlock& b = forest.block(ref.node);
      if (b.tree_root) continue;
      const auto parent_pos =
          position.find(BlockRefKey(ref.family, b.parent));
      if (parent_pos == position.end()) continue;  // parent split elsewhere
      EXPECT_LT(position.at(BlockRefKey(ref)), parent_pos->second)
          << "child resolved after its parent";
    }
  }
}

TEST(ScheduleTest, DominanceValuesUniquePerTree) {
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  const ProgressiveSchedule schedule =
      GenerateSchedule(&forests, DefaultParams(4, TreeScheduler::kOurs));
  std::set<int32_t> values;
  size_t trees = 0;
  for (const AnnotatedForest& forest : forests) {
    trees += forest.tree_roots().size();
    for (int root : forest.tree_roots()) {
      values.insert(schedule.dominance.at(BlockRefKey(forest.family(), root)));
    }
  }
  EXPECT_EQ(values.size(), trees);
}

TEST(ScheduleTest, OursSplitsOverflowedTrees) {
  // Skewed dataset: big prefix blocks make the first buckets overflow, so
  // the kOurs scheduler must produce more trees than NoSplit.
  Fixture fx(6000, 43);
  std::vector<AnnotatedForest> ours = fx.Annotate();
  GenerateSchedule(&ours, DefaultParams(8, TreeScheduler::kOurs));
  size_t ours_trees = 0;
  for (const AnnotatedForest& f : ours) ours_trees += f.tree_roots().size();

  std::vector<AnnotatedForest> nosplit = fx.Annotate();
  GenerateSchedule(&nosplit, DefaultParams(8, TreeScheduler::kNoSplit));
  size_t nosplit_trees = 0;
  for (const AnnotatedForest& f : nosplit) {
    nosplit_trees += f.tree_roots().size();
  }
  EXPECT_GT(ours_trees, nosplit_trees);
}

TEST(ScheduleTest, LptBalancesTotalCost) {
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  const int r = 4;
  const ProgressiveSchedule schedule =
      GenerateSchedule(&forests, DefaultParams(r, TreeScheduler::kLpt));
  std::vector<double> load(static_cast<size_t>(r), 0.0);
  for (int t = 0; t < r; ++t) {
    for (const BlockRef& ref : schedule.task_blocks[static_cast<size_t>(t)]) {
      load[static_cast<size_t>(t)] +=
          forests[static_cast<size_t>(ref.family)].block(ref.node).cost;
    }
  }
  const double max_load = *std::max_element(load.begin(), load.end());
  const double min_load = *std::min_element(load.begin(), load.end());
  ASSERT_GT(max_load, 0.0);
  // LPT keeps loads within a reasonable factor (tight bound is 4/3 - 1/3r
  // of optimal; the granularity of trees makes an exact check unreliable).
  EXPECT_GT(min_load, 0.0);
  EXPECT_LT(max_load / std::max(min_load, 1e-9), 5.0);
}

TEST(ScheduleTest, UtilityOrderWithinTask) {
  // Outside the bottom-up constraint, blocks appear in non-increasing
  // utility order: verify the subsequence of tree roots is util-sorted per
  // task for NoSplit (roots have no bottom-up constraint among each other
  // only when trees differ; roots of distinct trees are comparable).
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  const ProgressiveSchedule schedule =
      GenerateSchedule(&forests, DefaultParams(4, TreeScheduler::kNoSplit));
  for (const auto& blocks : schedule.task_blocks) {
    double last_root_util = std::numeric_limits<double>::infinity();
    for (const BlockRef& ref : blocks) {
      const AnnotatedBlock& b =
          forests[static_cast<size_t>(ref.family)].block(ref.node);
      if (!b.tree_root) continue;
      // A root is emitted when it is reached in utility order, and every
      // earlier-emitted root had higher-or-equal utility.
      EXPECT_LE(b.util, last_root_util + 1e-9);
      last_root_util = b.util;
    }
  }
}

TEST(ScheduleTest, DeterministicAcrossRuns) {
  Fixture fx;
  std::vector<AnnotatedForest> a = fx.Annotate();
  std::vector<AnnotatedForest> b = fx.Annotate();
  const ProgressiveSchedule sa =
      GenerateSchedule(&a, DefaultParams(6, TreeScheduler::kOurs));
  const ProgressiveSchedule sb =
      GenerateSchedule(&b, DefaultParams(6, TreeScheduler::kOurs));
  ASSERT_EQ(sa.task_blocks.size(), sb.task_blocks.size());
  for (size_t t = 0; t < sa.task_blocks.size(); ++t) {
    ASSERT_EQ(sa.task_blocks[t].size(), sb.task_blocks[t].size());
    for (size_t i = 0; i < sa.task_blocks[t].size(); ++i) {
      EXPECT_EQ(sa.task_blocks[t][i], sb.task_blocks[t][i]);
    }
  }
}

TEST(ScheduleTest, BudgetTruncatesSchedules) {
  Fixture fx;
  std::vector<AnnotatedForest> unlimited_forests = fx.Annotate();
  const ProgressiveSchedule unlimited = GenerateSchedule(
      &unlimited_forests, DefaultParams(4, TreeScheduler::kOurs));
  double max_task_cost = 0.0;
  for (const auto& blocks : unlimited.task_blocks) {
    double cost = 0.0;
    for (const BlockRef& ref : blocks) {
      cost += unlimited_forests[static_cast<size_t>(ref.family)]
                  .block(ref.node)
                  .cost;
    }
    max_task_cost = std::max(max_task_cost, cost);
  }

  std::vector<AnnotatedForest> forests = fx.Annotate();
  ScheduleParams params = DefaultParams(4, TreeScheduler::kOurs);
  params.per_task_budget = max_task_cost / 4.0;
  const ProgressiveSchedule budgeted = GenerateSchedule(&forests, params);
  size_t unlimited_blocks = 0;
  size_t budgeted_blocks = 0;
  for (const auto& blocks : unlimited.task_blocks) {
    unlimited_blocks += blocks.size();
  }
  for (int t = 0; t < budgeted.num_reduce_tasks; ++t) {
    const auto& blocks = budgeted.task_blocks[static_cast<size_t>(t)];
    budgeted_blocks += blocks.size();
    // Estimated cost of the kept prefix respects the budget.
    double cost = 0.0;
    for (const BlockRef& ref : blocks) {
      cost += forests[static_cast<size_t>(ref.family)].block(ref.node).cost;
    }
    EXPECT_LE(cost, params.per_task_budget + 1e-6);
    // Bottom-up still holds after truncation (children precede parents).
    std::unordered_map<uint64_t, size_t> position;
    for (size_t i = 0; i < blocks.size(); ++i) {
      position[BlockRefKey(blocks[i])] = i;
    }
    for (const BlockRef& ref : blocks) {
      const AnnotatedBlock& b =
          forests[static_cast<size_t>(ref.family)].block(ref.node);
      if (b.tree_root) continue;
      const auto parent = position.find(BlockRefKey(ref.family, b.parent));
      if (parent != position.end()) {
        EXPECT_LT(position.at(BlockRefKey(ref)), parent->second);
      }
    }
  }
  EXPECT_LT(budgeted_blocks, unlimited_blocks);
}

TEST(ScheduleTest, DescribeScheduleListsEveryTask) {
  Fixture fx(1500);
  std::vector<AnnotatedForest> forests = fx.Annotate();
  const ProgressiveSchedule schedule =
      GenerateSchedule(&forests, DefaultParams(3, TreeScheduler::kOurs));
  const std::string description = DescribeSchedule(schedule, forests, 2);
  EXPECT_NE(description.find("task 0:"), std::string::npos);
  EXPECT_NE(description.find("task 1:"), std::string::npos);
  EXPECT_NE(description.find("task 2:"), std::string::npos);
  EXPECT_NE(description.find("util="), std::string::npos);
}

TEST(ScheduleTest, TotalEstimatedCostPositive) {
  Fixture fx;
  std::vector<AnnotatedForest> forests = fx.Annotate();
  EXPECT_GT(TotalEstimatedCost(forests), 0.0);
}

TEST(ScheduleTest, WindowPairCountMatchesEnumeration) {
  for (const int64_t n : {0, 1, 2, 5, 14, 15, 16, 100}) {
    for (const int w : {1, 2, 5, 15}) {
      int64_t expected = 0;
      for (int64_t d = 1; d <= std::min<int64_t>(w - 1, n - 1); ++d) {
        expected += n - d;
      }
      EXPECT_EQ(WindowPairCount(n, w), expected) << "n=" << n << " w=" << w;
    }
  }
}

// Regression cases for the validation gap: these parameter mistakes used to
// silently misbehave (crash on zero tasks, negative bucket capacities from
// a non-monotone cost vector, weights silently replaced on mismatch).
TEST(ScheduleValidationTest, RejectsNonPositiveReduceTasks) {
  ScheduleParams p;
  p.num_reduce_tasks = 0;
  EXPECT_NE(ValidateScheduleParams(p).find("num_reduce_tasks"),
            std::string::npos);
  p.num_reduce_tasks = -3;
  EXPECT_NE(ValidateScheduleParams(p).find("num_reduce_tasks"),
            std::string::npos);
}

TEST(ScheduleValidationTest, RejectsNonMonotoneCostVector) {
  ScheduleParams p;
  p.cost_vector = {10.0, 5.0, 20.0};
  EXPECT_NE(ValidateScheduleParams(p).find("strictly increasing"),
            std::string::npos);
  p.cost_vector = {10.0, 10.0};
  EXPECT_NE(ValidateScheduleParams(p).find("strictly increasing"),
            std::string::npos);
  p.cost_vector = {-1.0, 5.0};
  EXPECT_NE(ValidateScheduleParams(p).find("positive"), std::string::npos);
}

TEST(ScheduleValidationTest, RejectsWeightCostLengthMismatch) {
  ScheduleParams p;
  p.cost_vector = {1.0, 2.0, 3.0};
  p.weights = {1.0, 0.5};
  EXPECT_NE(ValidateScheduleParams(p).find("does not match"),
            std::string::npos);
  p.weights = {1.0, 0.5, 0.2};
  EXPECT_EQ(ValidateScheduleParams(p), "");
}

TEST(ScheduleValidationTest, AcceptsDefaultsAndLabelsGenerateErrors) {
  EXPECT_EQ(ValidateScheduleParams(ScheduleParams()), "");

  Fixture fx(1500);
  std::vector<AnnotatedForest> forests = fx.Annotate();
  ScheduleParams p = DefaultParams(0, TreeScheduler::kOurs);
  const ProgressiveSchedule schedule = GenerateSchedule(&forests, p);
  EXPECT_NE(schedule.error.find("schedule:"), std::string::npos);
  EXPECT_TRUE(schedule.task_blocks.empty());
}

TEST(ScheduleTest, PairLevelSchedulersPopulateUnits) {
  for (const TreeScheduler scheduler :
       {TreeScheduler::kBlockSplit, TreeScheduler::kPairRange}) {
    Fixture fx(1500);
    std::vector<AnnotatedForest> forests = fx.Annotate();
    const ProgressiveSchedule schedule =
        GenerateSchedule(&forests, DefaultParams(4, scheduler));
    ASSERT_EQ(schedule.error, "");
    EXPECT_TRUE(schedule.pair_level);
    ASSERT_EQ(schedule.task_units.size(), 4u);
    ASSERT_EQ(schedule.task_blocks.size(), 4u);
    size_t units = 0;
    for (size_t t = 0; t < schedule.task_units.size(); ++t) {
      ASSERT_EQ(schedule.task_units[t].size(),
                schedule.task_blocks[t].size());
      for (size_t i = 0; i < schedule.task_units[t].size(); ++i) {
        EXPECT_TRUE(schedule.task_units[t][i].ref ==
                    schedule.task_blocks[t][i]);
      }
      units += schedule.task_units[t].size();
    }
    EXPECT_GT(units, 0u);
    // Every unit sequence value routes back to its task and position.
    for (const auto& [key, sqs] : schedule.unit_sequences) {
      for (const int64_t sq : sqs) {
        const auto t = static_cast<size_t>(sq / schedule.range_per_task);
        const auto i = static_cast<size_t>(sq % schedule.range_per_task);
        ASSERT_LT(t, schedule.task_units.size());
        ASSERT_LT(i, schedule.task_units[t].size());
        EXPECT_EQ(BlockRefKey(schedule.task_units[t][i].ref), key);
      }
    }
  }
}

}  // namespace
}  // namespace progres
